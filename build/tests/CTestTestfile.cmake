# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_automata[1]_include.cmake")
include("/root/repo/build/tests/test_modelcheck[1]_include.cmake")
include("/root/repo/build/tests/test_glm2fsa[1]_include.cmake")
include("/root/repo/build/tests/test_driving[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_lm[1]_include.cmake")
include("/root/repo/build/tests/test_dpo[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_vision[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_exports[1]_include.cmake")
include("/root/repo/build/tests/test_repair[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
