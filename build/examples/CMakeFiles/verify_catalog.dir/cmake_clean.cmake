file(REMOVE_RECURSE
  "CMakeFiles/verify_catalog.dir/verify_catalog.cpp.o"
  "CMakeFiles/verify_catalog.dir/verify_catalog.cpp.o.d"
  "verify_catalog"
  "verify_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
