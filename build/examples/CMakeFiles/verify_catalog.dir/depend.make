# Empty dependencies file for verify_catalog.
# This may be replaced when dependencies are built.
