file(REMOVE_RECURSE
  "CMakeFiles/right_turn_demo.dir/right_turn_demo.cpp.o"
  "CMakeFiles/right_turn_demo.dir/right_turn_demo.cpp.o.d"
  "right_turn_demo"
  "right_turn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/right_turn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
