# Empty compiler generated dependencies file for right_turn_demo.
# This may be replaced when dependencies are built.
