file(REMOVE_RECURSE
  "CMakeFiles/finetune_pipeline.dir/finetune_pipeline.cpp.o"
  "CMakeFiles/finetune_pipeline.dir/finetune_pipeline.cpp.o.d"
  "finetune_pipeline"
  "finetune_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
