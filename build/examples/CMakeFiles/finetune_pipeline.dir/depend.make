# Empty dependencies file for finetune_pipeline.
# This may be replaced when dependencies are built.
