file(REMOVE_RECURSE
  "CMakeFiles/left_turn_demo.dir/left_turn_demo.cpp.o"
  "CMakeFiles/left_turn_demo.dir/left_turn_demo.cpp.o.d"
  "left_turn_demo"
  "left_turn_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/left_turn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
