# Empty compiler generated dependencies file for left_turn_demo.
# This may be replaced when dependencies are built.
