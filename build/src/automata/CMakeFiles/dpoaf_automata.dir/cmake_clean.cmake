file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_automata.dir/controller.cpp.o"
  "CMakeFiles/dpoaf_automata.dir/controller.cpp.o.d"
  "CMakeFiles/dpoaf_automata.dir/dot_export.cpp.o"
  "CMakeFiles/dpoaf_automata.dir/dot_export.cpp.o.d"
  "CMakeFiles/dpoaf_automata.dir/product.cpp.o"
  "CMakeFiles/dpoaf_automata.dir/product.cpp.o.d"
  "CMakeFiles/dpoaf_automata.dir/transition_system.cpp.o"
  "CMakeFiles/dpoaf_automata.dir/transition_system.cpp.o.d"
  "libdpoaf_automata.a"
  "libdpoaf_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
