# Empty dependencies file for dpoaf_automata.
# This may be replaced when dependencies are built.
