
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/controller.cpp" "src/automata/CMakeFiles/dpoaf_automata.dir/controller.cpp.o" "gcc" "src/automata/CMakeFiles/dpoaf_automata.dir/controller.cpp.o.d"
  "/root/repo/src/automata/dot_export.cpp" "src/automata/CMakeFiles/dpoaf_automata.dir/dot_export.cpp.o" "gcc" "src/automata/CMakeFiles/dpoaf_automata.dir/dot_export.cpp.o.d"
  "/root/repo/src/automata/product.cpp" "src/automata/CMakeFiles/dpoaf_automata.dir/product.cpp.o" "gcc" "src/automata/CMakeFiles/dpoaf_automata.dir/product.cpp.o.d"
  "/root/repo/src/automata/transition_system.cpp" "src/automata/CMakeFiles/dpoaf_automata.dir/transition_system.cpp.o" "gcc" "src/automata/CMakeFiles/dpoaf_automata.dir/transition_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/dpoaf_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpoaf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
