file(REMOVE_RECURSE
  "libdpoaf_automata.a"
)
