file(REMOVE_RECURSE
  "libdpoaf_driving.a"
)
