file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_driving.dir/domain.cpp.o"
  "CMakeFiles/dpoaf_driving.dir/domain.cpp.o.d"
  "CMakeFiles/dpoaf_driving.dir/scenarios.cpp.o"
  "CMakeFiles/dpoaf_driving.dir/scenarios.cpp.o.d"
  "CMakeFiles/dpoaf_driving.dir/specs.cpp.o"
  "CMakeFiles/dpoaf_driving.dir/specs.cpp.o.d"
  "CMakeFiles/dpoaf_driving.dir/tasks.cpp.o"
  "CMakeFiles/dpoaf_driving.dir/tasks.cpp.o.d"
  "libdpoaf_driving.a"
  "libdpoaf_driving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_driving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
