# Empty compiler generated dependencies file for dpoaf_driving.
# This may be replaced when dependencies are built.
