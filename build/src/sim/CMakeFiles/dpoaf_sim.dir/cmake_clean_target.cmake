file(REMOVE_RECURSE
  "libdpoaf_sim.a"
)
