# Empty dependencies file for dpoaf_sim.
# This may be replaced when dependencies are built.
