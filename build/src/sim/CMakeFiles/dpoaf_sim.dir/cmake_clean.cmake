file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_sim.dir/empirical.cpp.o"
  "CMakeFiles/dpoaf_sim.dir/empirical.cpp.o.d"
  "CMakeFiles/dpoaf_sim.dir/simulator.cpp.o"
  "CMakeFiles/dpoaf_sim.dir/simulator.cpp.o.d"
  "libdpoaf_sim.a"
  "libdpoaf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
