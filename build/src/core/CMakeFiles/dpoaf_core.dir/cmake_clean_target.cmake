file(REMOVE_RECURSE
  "libdpoaf_core.a"
)
