file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_core.dir/pipeline.cpp.o"
  "CMakeFiles/dpoaf_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/dpoaf_core.dir/repair.cpp.o"
  "CMakeFiles/dpoaf_core.dir/repair.cpp.o.d"
  "libdpoaf_core.a"
  "libdpoaf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
