# Empty dependencies file for dpoaf_core.
# This may be replaced when dependencies are built.
