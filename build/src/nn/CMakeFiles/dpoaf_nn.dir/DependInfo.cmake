
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/decoder.cpp" "src/nn/CMakeFiles/dpoaf_nn.dir/decoder.cpp.o" "gcc" "src/nn/CMakeFiles/dpoaf_nn.dir/decoder.cpp.o.d"
  "/root/repo/src/nn/gpt.cpp" "src/nn/CMakeFiles/dpoaf_nn.dir/gpt.cpp.o" "gcc" "src/nn/CMakeFiles/dpoaf_nn.dir/gpt.cpp.o.d"
  "/root/repo/src/nn/modules.cpp" "src/nn/CMakeFiles/dpoaf_nn.dir/modules.cpp.o" "gcc" "src/nn/CMakeFiles/dpoaf_nn.dir/modules.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/dpoaf_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/dpoaf_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/tokenizer.cpp" "src/nn/CMakeFiles/dpoaf_nn.dir/tokenizer.cpp.o" "gcc" "src/nn/CMakeFiles/dpoaf_nn.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dpoaf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpoaf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
