file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_nn.dir/decoder.cpp.o"
  "CMakeFiles/dpoaf_nn.dir/decoder.cpp.o.d"
  "CMakeFiles/dpoaf_nn.dir/gpt.cpp.o"
  "CMakeFiles/dpoaf_nn.dir/gpt.cpp.o.d"
  "CMakeFiles/dpoaf_nn.dir/modules.cpp.o"
  "CMakeFiles/dpoaf_nn.dir/modules.cpp.o.d"
  "CMakeFiles/dpoaf_nn.dir/optim.cpp.o"
  "CMakeFiles/dpoaf_nn.dir/optim.cpp.o.d"
  "CMakeFiles/dpoaf_nn.dir/tokenizer.cpp.o"
  "CMakeFiles/dpoaf_nn.dir/tokenizer.cpp.o.d"
  "libdpoaf_nn.a"
  "libdpoaf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
