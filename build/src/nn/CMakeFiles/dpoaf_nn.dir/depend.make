# Empty dependencies file for dpoaf_nn.
# This may be replaced when dependencies are built.
