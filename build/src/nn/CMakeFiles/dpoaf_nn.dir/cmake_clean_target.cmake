file(REMOVE_RECURSE
  "libdpoaf_nn.a"
)
