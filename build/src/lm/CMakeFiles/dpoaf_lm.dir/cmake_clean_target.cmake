file(REMOVE_RECURSE
  "libdpoaf_lm.a"
)
