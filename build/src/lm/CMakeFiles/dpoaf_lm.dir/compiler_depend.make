# Empty compiler generated dependencies file for dpoaf_lm.
# This may be replaced when dependencies are built.
