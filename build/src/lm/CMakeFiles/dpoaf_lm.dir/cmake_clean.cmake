file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_lm.dir/corpus.cpp.o"
  "CMakeFiles/dpoaf_lm.dir/corpus.cpp.o.d"
  "CMakeFiles/dpoaf_lm.dir/pretrain.cpp.o"
  "CMakeFiles/dpoaf_lm.dir/pretrain.cpp.o.d"
  "libdpoaf_lm.a"
  "libdpoaf_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
