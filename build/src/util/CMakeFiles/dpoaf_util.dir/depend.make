# Empty dependencies file for dpoaf_util.
# This may be replaced when dependencies are built.
