file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_util.dir/stats.cpp.o"
  "CMakeFiles/dpoaf_util.dir/stats.cpp.o.d"
  "CMakeFiles/dpoaf_util.dir/strings.cpp.o"
  "CMakeFiles/dpoaf_util.dir/strings.cpp.o.d"
  "CMakeFiles/dpoaf_util.dir/table.cpp.o"
  "CMakeFiles/dpoaf_util.dir/table.cpp.o.d"
  "libdpoaf_util.a"
  "libdpoaf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
