file(REMOVE_RECURSE
  "libdpoaf_util.a"
)
