file(REMOVE_RECURSE
  "libdpoaf_dpo.a"
)
