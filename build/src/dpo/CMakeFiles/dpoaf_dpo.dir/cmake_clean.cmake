file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_dpo.dir/dataset.cpp.o"
  "CMakeFiles/dpoaf_dpo.dir/dataset.cpp.o.d"
  "CMakeFiles/dpoaf_dpo.dir/trainer.cpp.o"
  "CMakeFiles/dpoaf_dpo.dir/trainer.cpp.o.d"
  "libdpoaf_dpo.a"
  "libdpoaf_dpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_dpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
