# Empty dependencies file for dpoaf_dpo.
# This may be replaced when dependencies are built.
