# Empty dependencies file for dpoaf_glm2fsa.
# This may be replaced when dependencies are built.
