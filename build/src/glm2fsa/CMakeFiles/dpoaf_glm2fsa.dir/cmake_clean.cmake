file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_glm2fsa.dir/aligner.cpp.o"
  "CMakeFiles/dpoaf_glm2fsa.dir/aligner.cpp.o.d"
  "CMakeFiles/dpoaf_glm2fsa.dir/builder.cpp.o"
  "CMakeFiles/dpoaf_glm2fsa.dir/builder.cpp.o.d"
  "CMakeFiles/dpoaf_glm2fsa.dir/semantic_parser.cpp.o"
  "CMakeFiles/dpoaf_glm2fsa.dir/semantic_parser.cpp.o.d"
  "libdpoaf_glm2fsa.a"
  "libdpoaf_glm2fsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_glm2fsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
