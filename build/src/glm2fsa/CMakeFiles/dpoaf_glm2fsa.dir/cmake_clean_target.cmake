file(REMOVE_RECURSE
  "libdpoaf_glm2fsa.a"
)
