# Empty compiler generated dependencies file for dpoaf_logic.
# This may be replaced when dependencies are built.
