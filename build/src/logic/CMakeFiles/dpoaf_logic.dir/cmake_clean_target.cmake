file(REMOVE_RECURSE
  "libdpoaf_logic.a"
)
