
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/lasso_eval.cpp" "src/logic/CMakeFiles/dpoaf_logic.dir/lasso_eval.cpp.o" "gcc" "src/logic/CMakeFiles/dpoaf_logic.dir/lasso_eval.cpp.o.d"
  "/root/repo/src/logic/ltl.cpp" "src/logic/CMakeFiles/dpoaf_logic.dir/ltl.cpp.o" "gcc" "src/logic/CMakeFiles/dpoaf_logic.dir/ltl.cpp.o.d"
  "/root/repo/src/logic/ltlf.cpp" "src/logic/CMakeFiles/dpoaf_logic.dir/ltlf.cpp.o" "gcc" "src/logic/CMakeFiles/dpoaf_logic.dir/ltlf.cpp.o.d"
  "/root/repo/src/logic/parser.cpp" "src/logic/CMakeFiles/dpoaf_logic.dir/parser.cpp.o" "gcc" "src/logic/CMakeFiles/dpoaf_logic.dir/parser.cpp.o.d"
  "/root/repo/src/logic/vocabulary.cpp" "src/logic/CMakeFiles/dpoaf_logic.dir/vocabulary.cpp.o" "gcc" "src/logic/CMakeFiles/dpoaf_logic.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dpoaf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
