file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_logic.dir/lasso_eval.cpp.o"
  "CMakeFiles/dpoaf_logic.dir/lasso_eval.cpp.o.d"
  "CMakeFiles/dpoaf_logic.dir/ltl.cpp.o"
  "CMakeFiles/dpoaf_logic.dir/ltl.cpp.o.d"
  "CMakeFiles/dpoaf_logic.dir/ltlf.cpp.o"
  "CMakeFiles/dpoaf_logic.dir/ltlf.cpp.o.d"
  "CMakeFiles/dpoaf_logic.dir/parser.cpp.o"
  "CMakeFiles/dpoaf_logic.dir/parser.cpp.o.d"
  "CMakeFiles/dpoaf_logic.dir/vocabulary.cpp.o"
  "CMakeFiles/dpoaf_logic.dir/vocabulary.cpp.o.d"
  "libdpoaf_logic.a"
  "libdpoaf_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
