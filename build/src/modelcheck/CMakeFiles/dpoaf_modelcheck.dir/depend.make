# Empty dependencies file for dpoaf_modelcheck.
# This may be replaced when dependencies are built.
