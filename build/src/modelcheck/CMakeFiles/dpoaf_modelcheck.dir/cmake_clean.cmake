file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_modelcheck.dir/buchi.cpp.o"
  "CMakeFiles/dpoaf_modelcheck.dir/buchi.cpp.o.d"
  "CMakeFiles/dpoaf_modelcheck.dir/checker.cpp.o"
  "CMakeFiles/dpoaf_modelcheck.dir/checker.cpp.o.d"
  "CMakeFiles/dpoaf_modelcheck.dir/smv_export.cpp.o"
  "CMakeFiles/dpoaf_modelcheck.dir/smv_export.cpp.o.d"
  "libdpoaf_modelcheck.a"
  "libdpoaf_modelcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_modelcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
