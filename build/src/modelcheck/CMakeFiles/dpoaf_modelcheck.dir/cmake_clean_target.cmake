file(REMOVE_RECURSE
  "libdpoaf_modelcheck.a"
)
