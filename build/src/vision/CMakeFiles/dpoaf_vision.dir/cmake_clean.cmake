file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_vision.dir/calibration.cpp.o"
  "CMakeFiles/dpoaf_vision.dir/calibration.cpp.o.d"
  "CMakeFiles/dpoaf_vision.dir/detector.cpp.o"
  "CMakeFiles/dpoaf_vision.dir/detector.cpp.o.d"
  "libdpoaf_vision.a"
  "libdpoaf_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
