
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/calibration.cpp" "src/vision/CMakeFiles/dpoaf_vision.dir/calibration.cpp.o" "gcc" "src/vision/CMakeFiles/dpoaf_vision.dir/calibration.cpp.o.d"
  "/root/repo/src/vision/detector.cpp" "src/vision/CMakeFiles/dpoaf_vision.dir/detector.cpp.o" "gcc" "src/vision/CMakeFiles/dpoaf_vision.dir/detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dpoaf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
