# Empty dependencies file for dpoaf_vision.
# This may be replaced when dependencies are built.
