file(REMOVE_RECURSE
  "libdpoaf_vision.a"
)
