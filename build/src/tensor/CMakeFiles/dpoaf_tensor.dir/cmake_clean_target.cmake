file(REMOVE_RECURSE
  "libdpoaf_tensor.a"
)
