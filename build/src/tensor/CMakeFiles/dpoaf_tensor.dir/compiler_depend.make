# Empty compiler generated dependencies file for dpoaf_tensor.
# This may be replaced when dependencies are built.
