file(REMOVE_RECURSE
  "CMakeFiles/dpoaf_tensor.dir/ops.cpp.o"
  "CMakeFiles/dpoaf_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/dpoaf_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dpoaf_tensor.dir/tensor.cpp.o.d"
  "libdpoaf_tensor.a"
  "libdpoaf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpoaf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
