# Empty dependencies file for fig9_specs_vs_epoch.
# This may be replaced when dependencies are built.
