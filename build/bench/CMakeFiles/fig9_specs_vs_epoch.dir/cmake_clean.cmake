file(REMOVE_RECURSE
  "CMakeFiles/fig9_specs_vs_epoch.dir/fig9_specs_vs_epoch.cpp.o"
  "CMakeFiles/fig9_specs_vs_epoch.dir/fig9_specs_vs_epoch.cpp.o.d"
  "fig9_specs_vs_epoch"
  "fig9_specs_vs_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_specs_vs_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
