file(REMOVE_RECURSE
  "CMakeFiles/fig11_empirical_eval.dir/fig11_empirical_eval.cpp.o"
  "CMakeFiles/fig11_empirical_eval.dir/fig11_empirical_eval.cpp.o.d"
  "fig11_empirical_eval"
  "fig11_empirical_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_empirical_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
