# Empty dependencies file for fig11_empirical_eval.
# This may be replaced when dependencies are built.
