# Empty compiler generated dependencies file for fig8_dpo_training.
# This may be replaced when dependencies are built.
