file(REMOVE_RECURSE
  "CMakeFiles/fig8_dpo_training.dir/fig8_dpo_training.cpp.o"
  "CMakeFiles/fig8_dpo_training.dir/fig8_dpo_training.cpp.o.d"
  "fig8_dpo_training"
  "fig8_dpo_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dpo_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
