# Empty dependencies file for micro_modelcheck.
# This may be replaced when dependencies are built.
