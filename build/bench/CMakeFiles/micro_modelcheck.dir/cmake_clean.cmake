file(REMOVE_RECURSE
  "CMakeFiles/micro_modelcheck.dir/micro_modelcheck.cpp.o"
  "CMakeFiles/micro_modelcheck.dir/micro_modelcheck.cpp.o.d"
  "micro_modelcheck"
  "micro_modelcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_modelcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
