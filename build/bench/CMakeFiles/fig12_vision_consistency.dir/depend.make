# Empty dependencies file for fig12_vision_consistency.
# This may be replaced when dependencies are built.
