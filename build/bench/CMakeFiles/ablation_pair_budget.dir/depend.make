# Empty dependencies file for ablation_pair_budget.
# This may be replaced when dependencies are built.
