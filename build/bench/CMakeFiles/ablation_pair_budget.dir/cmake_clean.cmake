file(REMOVE_RECURSE
  "CMakeFiles/ablation_pair_budget.dir/ablation_pair_budget.cpp.o"
  "CMakeFiles/ablation_pair_budget.dir/ablation_pair_budget.cpp.o.d"
  "ablation_pair_budget"
  "ablation_pair_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pair_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
