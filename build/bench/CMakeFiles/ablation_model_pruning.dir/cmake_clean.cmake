file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_pruning.dir/ablation_model_pruning.cpp.o"
  "CMakeFiles/ablation_model_pruning.dir/ablation_model_pruning.cpp.o.d"
  "ablation_model_pruning"
  "ablation_model_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
