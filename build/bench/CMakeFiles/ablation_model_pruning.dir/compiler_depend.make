# Empty compiler generated dependencies file for ablation_model_pruning.
# This may be replaced when dependencies are built.
