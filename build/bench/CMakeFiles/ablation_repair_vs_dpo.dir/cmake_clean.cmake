file(REMOVE_RECURSE
  "CMakeFiles/ablation_repair_vs_dpo.dir/ablation_repair_vs_dpo.cpp.o"
  "CMakeFiles/ablation_repair_vs_dpo.dir/ablation_repair_vs_dpo.cpp.o.d"
  "ablation_repair_vs_dpo"
  "ablation_repair_vs_dpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_repair_vs_dpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
