# Empty dependencies file for ablation_repair_vs_dpo.
# This may be replaced when dependencies are built.
