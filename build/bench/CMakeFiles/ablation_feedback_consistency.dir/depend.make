# Empty dependencies file for ablation_feedback_consistency.
# This may be replaced when dependencies are built.
