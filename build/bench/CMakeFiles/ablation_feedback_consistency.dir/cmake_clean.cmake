file(REMOVE_RECURSE
  "CMakeFiles/ablation_feedback_consistency.dir/ablation_feedback_consistency.cpp.o"
  "CMakeFiles/ablation_feedback_consistency.dir/ablation_feedback_consistency.cpp.o.d"
  "ablation_feedback_consistency"
  "ablation_feedback_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feedback_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
