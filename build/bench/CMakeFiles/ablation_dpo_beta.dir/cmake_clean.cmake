file(REMOVE_RECURSE
  "CMakeFiles/ablation_dpo_beta.dir/ablation_dpo_beta.cpp.o"
  "CMakeFiles/ablation_dpo_beta.dir/ablation_dpo_beta.cpp.o.d"
  "ablation_dpo_beta"
  "ablation_dpo_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dpo_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
