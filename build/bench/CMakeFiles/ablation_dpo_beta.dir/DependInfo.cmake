
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_dpo_beta.cpp" "bench/CMakeFiles/ablation_dpo_beta.dir/ablation_dpo_beta.cpp.o" "gcc" "bench/CMakeFiles/ablation_dpo_beta.dir/ablation_dpo_beta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpoaf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dpo/CMakeFiles/dpoaf_dpo.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/dpoaf_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dpoaf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dpoaf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/driving/CMakeFiles/dpoaf_driving.dir/DependInfo.cmake"
  "/root/repo/build/src/glm2fsa/CMakeFiles/dpoaf_glm2fsa.dir/DependInfo.cmake"
  "/root/repo/build/src/modelcheck/CMakeFiles/dpoaf_modelcheck.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/dpoaf_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/dpoaf_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpoaf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
