# Empty compiler generated dependencies file for ablation_dpo_beta.
# This may be replaced when dependencies are built.
