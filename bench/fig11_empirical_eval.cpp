// Figure 11 reproduction: percentage P_Φ of each specification Φ1..Φ5
// being satisfied during actual operations in the (simulated) system,
// before vs after fine-tuning.
//
// Controllers are built from responses sampled from the pre-trained model
// (before) and the DPO-fine-tuned model (after); each controller is
// operated repeatedly in the scenario simulator and its rollout traces are
// checked against the specifications under finite-trace semantics (§4.2,
// Empirical Evaluation).
//
// Expected shape (paper): P_Φ after fine-tuning ≥ before, for all five
// specifications — empirical feedback is consistent with the formal
// verification results of Figure 9.
//
// Usage: fig11_empirical_eval [--rollouts N] [--epochs N] [--fast]
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "sim/empirical.hpp"
#include "util/table.hpp"

namespace {

using namespace dpoaf;

// Sample responses from `model`, build controllers for every parseable
// one, roll each out in its task's scenario, and aggregate P_Φ per spec.
std::map<std::string, double> evaluate_in_system(
    const core::DpoAfPipeline& pipe, const nn::TinyGpt& model,
    const std::vector<modelcheck::NamedSpec>& specs, int samples_per_task,
    int rollouts_per_ctrl, int horizon, Rng& rng) {
  std::map<std::string, double> prob_sum;
  std::map<std::string, int> prob_n;

  lm::SamplerConfig sampler;  // library defaults
  for (const auto& task : pipe.domain().tasks()) {
    sim::SimulatorConfig sim_cfg;
    sim_cfg.horizon = horizon;
    sim_cfg.epsilon_label = pipe.domain().stop_action();
    sim::Simulator simulator(pipe.domain().model(task.scenario), sim_cfg);

    const auto responses = lm::sample_responses(
        model, pipe.tokenizer(), task.prompt, samples_per_task, sampler, rng);
    for (const auto& response : responses.texts) {
      auto g2f = glm2fsa::glm2fsa(response, pipe.domain().aligner(),
                                  pipe.domain().build_options());
      if (!g2f.parsed.ok()) {
        // Unalignable response: counts as satisfying nothing, mirroring
        // the formal channel's ranking of alignment failures.
        for (const auto& spec : specs) {
          prob_sum[spec.name] += 0.0;
          prob_n[spec.name] += 1;
        }
        continue;
      }
      const auto report = sim::empirical_evaluation(
          simulator, g2f.controller, specs, rollouts_per_ctrl, rng);
      for (const auto& s : report.per_spec) {
        prob_sum[s.spec_name] += s.probability;
        prob_n[s.spec_name] += 1;
      }
    }
  }
  std::map<std::string, double> out;
  for (const auto& [name, sum] : prob_sum)
    out[name] = sum / std::max(1, prob_n[name]);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  bench::Stopwatch sw;

  const int rollouts = args.get_int("--rollouts", args.has("--fast") ? 20 : 60);
  const int samples = args.get_int("--samples", args.has("--fast") ? 3 : 6);
  const int horizon = args.get_int("--horizon", 40);

  core::PipelineConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("--seed", 3));
  cfg.dpo.epochs = args.get_int("--epochs", args.has("--fast") ? 30 : 80);
  cfg.dpo.checkpoint_every = cfg.dpo.epochs + 1;  // no mid-run evaluation
  cfg.dpo.pairs_per_epoch = 48;

  core::DpoAfPipeline pipe(cfg);
  std::cerr << "[pre-training]\n";
  pipe.pretrain_model();
  const nn::TinyGpt before = pipe.model().clone();
  std::cerr << "[fine-tuning]\n";
  pipe.run_dpo(pipe.build_pairs(pipe.collect_candidates()));
  const nn::TinyGpt& after = pipe.model();

  const auto specs = driving::rulebook_head(pipe.domain().vocab());
  Rng rng_before(101), rng_after(101);
  std::cerr << "[operating pre-fine-tuning controllers in the simulator]\n";
  const auto p_before = evaluate_in_system(pipe, before, specs, samples,
                                           rollouts, horizon, rng_before);
  std::cerr << "[operating fine-tuned controllers in the simulator]\n";
  const auto p_after = evaluate_in_system(pipe, after, specs, samples,
                                          rollouts, horizon, rng_after);

  std::cout << "Figure 11 — P_Phi during actual operation in the simulated "
               "system (" << rollouts << " rollouts per controller, horizon "
            << horizon << ")\n\n";
  TextTable table("P_Phi before vs after fine-tuning");
  table.set_header({"spec", "before", "after", "delta", "after>=before"});
  int improved = 0;
  for (const auto& spec : specs) {
    const double b = p_before.at(spec.name);
    const double a = p_after.at(spec.name);
    if (a >= b - 1e-9) ++improved;
    table.add_row({spec.name, TextTable::num(b, 3), TextTable::num(a, 3),
                   TextTable::num(a - b, 3), a >= b - 1e-9 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nshape check: " << improved << "/" << specs.size()
            << " specifications improved or held"
            << (improved == static_cast<int>(specs.size()) ? " (OK)" : "")
            << "\n";

  bench::print_runtime(sw);
  return 0;
}
