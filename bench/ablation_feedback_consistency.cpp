// Ablation: consistency of the two automated-feedback channels (§5.2 —
// "we obtain consistent feedback from the formal verification and
// empirical evaluation"). For every aligned catalog variant, compares the
// formal score (# specifications verified) with the empirical score (mean
// P_Φ over the 15 specifications across simulator rollouts), and reports
// per-task Spearman rank correlation plus pairwise ranking agreement —
// i.e., how often the two channels would pick the same DPO winner.
//
// Usage: ablation_feedback_consistency [--rollouts N]
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "driving/domain.hpp"
#include "sim/empirical.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  bench::Stopwatch sw;

  const int rollouts = args.get_int("--rollouts", args.has("--fast") ? 40 : 150);
  const int horizon = args.get_int("--horizon", 40);

  driving::DrivingDomain domain;
  TextTable table("formal vs empirical feedback per task");
  table.set_header({"task", "variants", "spearman", "pairwise_agreement"});

  std::vector<double> all_formal, all_empirical;
  double agree_total = 0, pair_total = 0;

  for (const auto& task : domain.tasks()) {
    sim::SimulatorConfig sim_cfg;
    sim_cfg.horizon = horizon;
    sim_cfg.epsilon_label = domain.stop_action();
    sim::Simulator simulator(domain.model(task.scenario), sim_cfg);

    std::vector<double> formal, empirical;
    Rng rng(17);
    for (const auto& variant : task.variants) {
      const auto fb =
          driving::formal_feedback(domain, task.scenario, variant.text);
      if (!fb.aligned) continue;  // both channels need a controller
      const auto emp = sim::empirical_evaluation(
          simulator, fb.controller, domain.specs(), rollouts, rng);
      formal.push_back(static_cast<double>(fb.report.satisfied()));
      empirical.push_back(emp.mean_probability());
    }
    all_formal.insert(all_formal.end(), formal.begin(), formal.end());
    all_empirical.insert(all_empirical.end(), empirical.begin(),
                         empirical.end());

    // Pairwise agreement: of all strictly-formal-ordered pairs, fraction
    // ordered identically by the empirical channel.
    double agree = 0, pairs = 0;
    for (std::size_t i = 0; i < formal.size(); ++i) {
      for (std::size_t j = i + 1; j < formal.size(); ++j) {
        if (formal[i] == formal[j]) continue;
        pairs += 1;
        const bool formal_prefers_i = formal[i] > formal[j];
        const bool empirical_prefers_i = empirical[i] > empirical[j];
        if (formal_prefers_i == empirical_prefers_i) agree += 1;
      }
    }
    agree_total += agree;
    pair_total += pairs;
    table.add_row({task.id, std::to_string(formal.size()),
                   TextTable::num(spearman(formal, empirical), 3),
                   pairs > 0 ? TextTable::num(agree / pairs, 3) : "-"});
  }
  table.print(std::cout);

  std::cout << "\noverall: spearman "
            << TextTable::num(spearman(all_formal, all_empirical), 3)
            << ", pairwise agreement "
            << TextTable::num(pair_total > 0 ? agree_total / pair_total : 0.0,
                              3)
            << " over " << static_cast<long>(pair_total)
            << " strictly-ordered pairs ("
            << rollouts << " rollouts/controller)\n"
            << "(high agreement = the empirical channel can substitute for "
               "formal verification when no model is available, §4.2)\n";

  bench::print_runtime(sw);
  return 0;
}
