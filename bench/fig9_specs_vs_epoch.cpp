// Figure 9 reproduction: number of specifications satisfied (formal
// verification of controllers built from sampled responses) vs DPO epoch,
// split into training-task and validation-task curves.
//
// Expected shape (paper): both curves rise with fine-tuning — roughly 60%
// of the 15 specifications before fine-tuning to ≥ ~85-90% after — with
// validation tracking training (the model generalizes the compliant
// response patterns to held-out tasks).
//
// Usage: fig9_specs_vs_epoch [--epochs N] [--ckpt-every N] [--seed N] [--fast]
#include <iostream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  bench::Stopwatch sw;

  core::PipelineConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("--seed", 3));
  cfg.dpo.epochs = args.get_int("--epochs", args.has("--fast") ? 30 : 100);
  cfg.dpo.checkpoint_every =
      args.get_int("--ckpt-every", args.has("--fast") ? 10 : 10);
  cfg.dpo.pairs_per_epoch = 48;

  core::DpoAfPipeline pipe(cfg);
  std::cerr << "[pre-training the stand-in language model]\n";
  const auto pt = pipe.pretrain_model();
  std::cerr << "[pre-train loss " << pt.epoch_losses.front() << " -> "
            << pt.epoch_losses.back() << "]\n";
  const auto candidates = pipe.collect_candidates();
  const auto pairs = pipe.build_pairs(candidates);
  std::cerr << "[" << pairs.size() << " preference pairs from "
            << candidates.size() << " training tasks]\n";
  const auto result = pipe.run_dpo(pairs);

  std::cout << "Figure 9 — specifications satisfied (of "
            << pipe.domain().specs().size() << ") vs DPO epoch\n"
            << "controllers from sampled responses ("
            << pipe.config().eval_samples_per_task
            << " samples/task), formally verified per scenario\n\n";

  TextTable table("mean specifications satisfied per task group");
  table.set_header(
      {"epoch", "training_tasks", "validation_tasks", "train_pct", "val_pct",
       "train_unaligned_pct", "val_unaligned_pct", "truncated"});
  for (const auto& ckpt : result.checkpoints) {
    table.add_row(
        {std::to_string(ckpt.epoch),
         TextTable::num(ckpt.train_mean_satisfied, 2),
         TextTable::num(ckpt.val_mean_satisfied, 2),
         TextTable::num(ckpt.train_mean_satisfied / 15.0 * 100, 1),
         TextTable::num(ckpt.val_mean_satisfied / 15.0 * 100, 1),
         TextTable::num(ckpt.train_alignment_failure_rate * 100, 1),
         TextTable::num(ckpt.val_alignment_failure_rate * 100, 1),
         std::to_string(ckpt.truncated_responses)});
  }
  table.print(std::cout);

  TextTable per_task("per-task detail (first and last checkpoint)");
  per_task.set_header({"task", "group", "satisfied@0", "satisfied@final"});
  const auto& first = result.checkpoints.front();
  const auto& last = result.checkpoints.back();
  for (std::size_t i = 0; i < first.per_task.size(); ++i) {
    const auto& task = pipe.domain().task_by_id(first.per_task[i].first);
    per_task.add_row({task.id, task.training ? "train" : "validation",
                      TextTable::num(first.per_task[i].second, 2),
                      TextTable::num(last.per_task[i].second, 2)});
  }
  std::cout << "\n";
  per_task.print(std::cout);

  // Shape check: best checkpoint beats the pre-fine-tuning baseline.
  double best_train = 0, best_val = 0;
  for (const auto& c : result.checkpoints) {
    best_train = std::max(best_train, c.train_mean_satisfied);
    best_val = std::max(best_val, c.val_mean_satisfied);
  }
  std::cout << "\nshape check: train "
            << TextTable::num(first.train_mean_satisfied, 2) << " -> best "
            << TextTable::num(best_train, 2)
            << (best_train > first.train_mean_satisfied ? " (rising, OK)"
                                                        : " (NOT OK)")
            << "; validation " << TextTable::num(first.val_mean_satisfied, 2)
            << " -> best " << TextTable::num(best_val, 2)
            << (best_val > first.val_mean_satisfied ? " (rising, OK)"
                                                    : " (NOT OK)")
            << "\n";

  std::cout << "\nfeedback cache: " << result.feedback_cache_stats.summary()
            << "\nbuchi cache:    " << result.buchi_cache_stats.summary()
            << "\n";

  bench::print_runtime(sw);
  return 0;
}
