// Micro-benchmarks (google-benchmark): the tensor/autograd substrate that
// carries pre-training and DPO — matmul, softmax, layer-norm throughput,
// and a full TinyGpt forward/backward step at the pipeline's default size.
//
// The matmul and GPT benches are parameterized over the compute backends
// (docs/BACKENDS.md): each backend row first asserts output equivalence
// against the scalar reference (within float tolerance) and only then
// times, so a kernel that drifts numerically can never post a throughput
// number. CI's bench-regression job runs the BM_Matmul sweep under
// --benchmark_out and gates on the simd:scalar GFLOP/s ratio
// (scripts/check_bench_regression.py).
#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "bench_metrics_main.hpp"
#include "nn/gpt.hpp"
#include "tensor/backend/backend.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace dpoaf;
using tensor::Tape;
using tensor::Tensor;
namespace ops = tensor::ops;
namespace backend = tensor::backend;

constexpr const char* kBackends[] = {"scalar", "simd"};
constexpr double kTolerance = 1e-4;  // max relative elementwise error

bool backend_available(const std::string& name) {
  return name != "simd" || backend::simd_supported();
}

// Largest elementwise difference, relative to max(|element|, tensor
// magnitude): near-zero elements (catastrophic cancellation in long dot
// products) are judged against the tensor's scale, not their own.
double max_rel_diff(const Tensor& got, const Tensor& want) {
  double scale = 1e-6;
  for (std::int64_t i = 0; i < want.numel(); ++i)
    scale = std::max(scale, std::abs(static_cast<double>(want.data()[i])));
  double worst = 0.0;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    const double w = want.data()[i];
    const double d = std::abs(static_cast<double>(got.data()[i]) - w);
    worst = std::max(worst, d / std::max(std::abs(w), scale));
  }
  return worst;
}

// Skips the bench (with an error) unless `got` matches the scalar
// reference; returns false when timing must not proceed.
bool check_equivalent(benchmark::State& state, const Tensor& got,
                      const Tensor& want, const char* what) {
  const double diff = max_rel_diff(got, want);
  if (diff > kTolerance) {
    state.SkipWithError((std::string(what) + " diverged from scalar: max " +
                         "rel diff " + std::to_string(diff))
                            .c_str());
    return false;
  }
  return true;
}

void matmul_bench(benchmark::State& state, const std::string& be) {
  const auto n = state.range(0);
  if (!backend_available(be)) {
    state.SkipWithError("simd backend not supported on this CPU/build");
    return;
  }
  util::set_global_threads(1);  // serial kernel throughput; see …Threads
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  backend::select("scalar");
  Tensor ref = ops::matmul(nullptr, a, b);
  backend::select(be);
  if (!check_equivalent(state, ops::matmul(nullptr, a, b), ref, "matmul"))
    return;
  for (auto _ : state) {
    Tensor c = ops::matmul(nullptr, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  backend::select("");
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

// Thread-count sweep at the figure/ablation hot-path size (256³), per
// backend: the speedup column is the GFLOP/s ratio against the threads=1
// row of the same backend.
void matmul_threads_bench(benchmark::State& state, const std::string& be) {
  const auto threads = static_cast<int>(state.range(0));
  constexpr std::int64_t n = 256;
  if (!backend_available(be)) {
    state.SkipWithError("simd backend not supported on this CPU/build");
    return;
  }
  util::set_global_threads(threads);
  backend::select(be);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(nullptr, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  util::set_global_threads(1);
  backend::select("");
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

// Backward accumulations under the same sweep (both dA and dB paths).
void matmul_backward_threads_bench(benchmark::State& state,
                                   const std::string& be) {
  const auto threads = static_cast<int>(state.range(0));
  constexpr std::int64_t n = 256;
  if (!backend_available(be)) {
    state.SkipWithError("simd backend not supported on this CPU/build");
    return;
  }
  util::set_global_threads(threads);
  backend::select(be);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng).set_requires_grad(true);
  Tensor b = Tensor::randn({n, n}, rng).set_requires_grad(true);
  for (auto _ : state) {
    Tape tape;
    Tensor c = ops::matmul(&tape, a, b);
    Tensor loss = ops::sum(&tape, c);
    tape.backward(loss);
    benchmark::DoNotOptimize(a.grad());
    a.zero_grad();
    b.zero_grad();
  }
  util::set_global_threads(1);
  backend::select("");
}

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor x = Tensor::randn({64, 64}, rng);
  for (auto _ : state) {
    Tensor y = ops::causal_softmax_rows(nullptr, x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::randn({64, 48}, rng);
  Tensor gamma = Tensor::full({1, 48}, 1.0f);
  Tensor beta = Tensor::zeros({1, 48});
  for (auto _ : state) {
    Tensor y = ops::layer_norm(nullptr, x, gamma, beta);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNorm);

nn::TinyGpt& pipeline_sized_model() {
  static nn::TinyGpt model = [] {
    nn::GptConfig cfg;
    cfg.vocab_size = 80;
    cfg.d_model = 48;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 192;
    cfg.max_seq = 96;
    Rng rng(4);
    return nn::TinyGpt(cfg, rng);
  }();
  return model;
}

void gpt_forward_bench(benchmark::State& state, const std::string& be) {
  if (!backend_available(be)) {
    state.SkipWithError("simd backend not supported on this CPU/build");
    return;
  }
  auto& model = pipeline_sized_model();
  std::vector<int> ids(64);
  Rng rng(5);
  for (auto& id : ids) id = static_cast<int>(rng.below(80));
  backend::select("scalar");
  Tensor ref = model.forward(nullptr, ids);
  backend::select(be);
  if (!check_equivalent(state, model.forward(nullptr, ids), ref,
                        "gpt forward logits"))
    return;
  for (auto _ : state) {
    Tensor logits = model.forward(nullptr, ids);
    benchmark::DoNotOptimize(logits.data());
  }
  backend::select("");
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(64 * state.iterations()), benchmark::Counter::kIsRate);
}

void gpt_forward_backward_bench(benchmark::State& state,
                                const std::string& be) {
  if (!backend_available(be)) {
    state.SkipWithError("simd backend not supported on this CPU/build");
    return;
  }
  backend::select(be);
  auto& model = pipeline_sized_model();
  std::vector<int> ids(64);
  Rng rng(6);
  for (auto& id : ids) id = static_cast<int>(rng.below(80));
  for (auto _ : state) {
    Tape tape;
    Tensor loss = model.nll_loss(&tape, ids);
    tape.backward(loss);
    benchmark::DoNotOptimize(loss.item());
    for (Tensor p : model.parameters()) p.zero_grad();
  }
  backend::select("");
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(64 * state.iterations()), benchmark::Counter::kIsRate);
}

void register_backend_benches() {
  for (const char* be : kBackends) {
    const std::string name(be);
    benchmark::RegisterBenchmark(
        ("BM_Matmul/" + name).c_str(),
        [name](benchmark::State& s) { matmul_bench(s, name); })
        ->Arg(48)
        ->Arg(96)
        ->Arg(192);
    benchmark::RegisterBenchmark(
        ("BM_MatmulThreads/" + name).c_str(),
        [name](benchmark::State& s) { matmul_threads_bench(s, name); })
        ->Arg(1)
        ->Arg(2)
        ->Arg(4)
        ->Arg(8)
        ->ArgName("threads");
    benchmark::RegisterBenchmark(
        ("BM_MatmulBackwardThreads/" + name).c_str(),
        [name](benchmark::State& s) {
          matmul_backward_threads_bench(s, name);
        })
        ->Arg(1)
        ->Arg(2)
        ->Arg(4)
        ->ArgName("threads");
    benchmark::RegisterBenchmark(
        ("BM_GptForward/" + name).c_str(),
        [name](benchmark::State& s) { gpt_forward_bench(s, name); });
    benchmark::RegisterBenchmark(
        ("BM_GptForwardBackward/" + name).c_str(),
        [name](benchmark::State& s) { gpt_forward_backward_bench(s, name); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_backend_benches();
  return dpoaf_benchmark_main(argc, argv, "micro_tensor");
}
