// Micro-benchmarks (google-benchmark): the tensor/autograd substrate that
// carries pre-training and DPO — matmul, softmax, layer-norm throughput,
// and a full TinyGpt forward/backward step at the pipeline's default size.
#include <benchmark/benchmark.h>

#include "bench_metrics_main.hpp"
#include "nn/gpt.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace dpoaf;
using tensor::Tape;
using tensor::Tensor;
namespace ops = tensor::ops;

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  util::set_global_threads(1);  // serial baseline; see BM_MatmulThreads
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(nullptr, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Matmul)->Arg(48)->Arg(96)->Arg(192);

// Thread-count sweep at the figure/ablation hot-path size (256³): the
// speedup column is the GFLOP/s ratio against the threads=1 row.
void BM_MatmulThreads(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  constexpr std::int64_t n = 256;
  util::set_global_threads(threads);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(nullptr, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  util::set_global_threads(1);
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("threads");

// Backward accumulations under the same sweep (both dA and dB paths).
void BM_MatmulBackwardThreads(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  constexpr std::int64_t n = 256;
  util::set_global_threads(threads);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng).set_requires_grad(true);
  Tensor b = Tensor::randn({n, n}, rng).set_requires_grad(true);
  for (auto _ : state) {
    Tape tape;
    Tensor c = ops::matmul(&tape, a, b);
    Tensor loss = ops::sum(&tape, c);
    tape.backward(loss);
    benchmark::DoNotOptimize(a.grad());
    a.zero_grad();
    b.zero_grad();
  }
  util::set_global_threads(1);
}
BENCHMARK(BM_MatmulBackwardThreads)->Arg(1)->Arg(2)->Arg(4)
    ->ArgName("threads");

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor x = Tensor::randn({64, 64}, rng);
  for (auto _ : state) {
    Tensor y = ops::causal_softmax_rows(nullptr, x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::randn({64, 48}, rng);
  Tensor gamma = Tensor::full({1, 48}, 1.0f);
  Tensor beta = Tensor::zeros({1, 48});
  for (auto _ : state) {
    Tensor y = ops::layer_norm(nullptr, x, gamma, beta);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNorm);

nn::TinyGpt& pipeline_sized_model() {
  static nn::TinyGpt model = [] {
    nn::GptConfig cfg;
    cfg.vocab_size = 80;
    cfg.d_model = 48;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 192;
    cfg.max_seq = 96;
    Rng rng(4);
    return nn::TinyGpt(cfg, rng);
  }();
  return model;
}

void BM_GptForward(benchmark::State& state) {
  auto& model = pipeline_sized_model();
  std::vector<int> ids(64);
  Rng rng(5);
  for (auto& id : ids) id = static_cast<int>(rng.below(80));
  for (auto _ : state) {
    Tensor logits = model.forward(nullptr, ids);
    benchmark::DoNotOptimize(logits.data());
  }
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(64 * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GptForward);

void BM_GptForwardBackward(benchmark::State& state) {
  auto& model = pipeline_sized_model();
  std::vector<int> ids(64);
  Rng rng(6);
  for (auto& id : ids) id = static_cast<int>(rng.below(80));
  for (auto _ : state) {
    Tape tape;
    Tensor loss = model.nll_loss(&tape, ids);
    tape.backward(loss);
    benchmark::DoNotOptimize(loss.item());
    for (Tensor p : model.parameters()) p.zero_grad();
  }
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(64 * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GptForwardBackward);

}  // namespace

int main(int argc, char** argv) {
  return dpoaf_benchmark_main(argc, argv, "micro_tensor");
}
