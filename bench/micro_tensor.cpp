// Micro-benchmarks (google-benchmark): the tensor/autograd substrate that
// carries pre-training and DPO — matmul, softmax, layer-norm throughput,
// and a full TinyGpt forward/backward step at the pipeline's default size.
#include <benchmark/benchmark.h>

#include "nn/gpt.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace dpoaf;
using tensor::Tape;
using tensor::Tensor;
namespace ops = tensor::ops;

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(nullptr, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Matmul)->Arg(48)->Arg(96)->Arg(192);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor x = Tensor::randn({64, 64}, rng);
  for (auto _ : state) {
    Tensor y = ops::causal_softmax_rows(nullptr, x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::randn({64, 48}, rng);
  Tensor gamma = Tensor::full({1, 48}, 1.0f);
  Tensor beta = Tensor::zeros({1, 48});
  for (auto _ : state) {
    Tensor y = ops::layer_norm(nullptr, x, gamma, beta);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNorm);

nn::TinyGpt& pipeline_sized_model() {
  static nn::TinyGpt model = [] {
    nn::GptConfig cfg;
    cfg.vocab_size = 80;
    cfg.d_model = 48;
    cfg.n_heads = 4;
    cfg.n_layers = 2;
    cfg.d_ff = 192;
    cfg.max_seq = 96;
    Rng rng(4);
    return nn::TinyGpt(cfg, rng);
  }();
  return model;
}

void BM_GptForward(benchmark::State& state) {
  auto& model = pipeline_sized_model();
  std::vector<int> ids(64);
  Rng rng(5);
  for (auto& id : ids) id = static_cast<int>(rng.below(80));
  for (auto _ : state) {
    Tensor logits = model.forward(nullptr, ids);
    benchmark::DoNotOptimize(logits.data());
  }
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(64 * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GptForward);

void BM_GptForwardBackward(benchmark::State& state) {
  auto& model = pipeline_sized_model();
  std::vector<int> ids(64);
  Rng rng(6);
  for (auto& id : ids) id = static_cast<int>(rng.below(80));
  for (auto _ : state) {
    Tape tape;
    Tensor loss = model.nll_loss(&tape, ids);
    tape.backward(loss);
    benchmark::DoNotOptimize(loss.item());
    for (Tensor p : model.parameters()) p.zero_grad();
  }
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(64 * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GptForwardBackward);

}  // namespace

BENCHMARK_MAIN();
