// Ablation: counterexample-guided controller repair vs DPO-AF. The
// refinement-loop baseline (related work: Jha et al. 2023) patches each
// individual controller until the safety specifications pass; DPO-AF
// instead improves the *language model*, so new queries come out compliant
// without any per-response loop. This bench quantifies both: how much
// repair recovers per flawed catalog variant, and what it cannot fix
// (liveness violations, unalignable responses).
//
// Usage: ablation_repair_vs_dpo
#include <iostream>

#include "bench_common.hpp"
#include "core/repair.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  (void)args;
  bench::Stopwatch sw;

  driving::DrivingDomain domain;
  TextTable table("counterexample-guided repair per flawed variant");
  table.set_header({"task", "variant", "before", "after_repair", "iters"});

  RunningStats before_stats, after_stats;
  std::size_t unalignable = 0, fully_repaired = 0, total = 0;
  for (const auto& task : domain.tasks()) {
    for (const auto& variant : task.variants) {
      if (variant.tag == driving::FlawTag::Good ||
          variant.tag == driving::FlawTag::GoodVerbose)
        continue;
      ++total;
      if (variant.tag == driving::FlawTag::Unaligned) {
        // Repair operates on controllers; an unalignable response never
        // yields one. Only fine-tuning the model can fix this failure
        // class — the structural advantage of DPO-AF.
        ++unalignable;
        table.add_row({task.id, driving::flaw_name(variant.tag), "-1", "-1",
                       "-"});
        continue;
      }
      auto g2f = glm2fsa::glm2fsa(variant.text, domain.aligner(),
                                  domain.build_options());
      const auto result =
          core::repair_controller(domain, task.scenario, g2f.controller);
      before_stats.add(result.score_before);
      after_stats.add(result.score_after);
      if (result.score_after == static_cast<int>(domain.specs().size()))
        ++fully_repaired;
      table.add_row({task.id, driving::flaw_name(variant.tag),
                     std::to_string(result.score_before),
                     std::to_string(result.score_after),
                     std::to_string(result.iterations)});
    }
  }
  table.print(std::cout);

  std::cout << "\nsummary: repairable variants improved from mean "
            << TextTable::num(before_stats.mean(), 2) << " to "
            << TextTable::num(after_stats.mean(), 2) << " of 15; "
            << fully_repaired << "/" << total - unalignable
            << " reach full compliance; " << unalignable << "/" << total
            << " variants are unalignable and unrepairable (DPO-AF's "
               "fine-tuning is the only channel that fixes those)\n";

  bench::print_runtime(sw);
  return 0;
}
