// Figure 8 reproduction: DPO fine-tuning statistics for the language model
// optimized for the autonomous driving system — loss, accuracy, and
// marginal preference per epoch, mean over seeds with min/max band.
//
// Expected shape (paper): loss decreases toward 0, accuracy rises toward
// 1, marginal preference grows monotonically; the band across seeds is
// narrow because only data order differs between seeds.
//
// Usage: fig8_dpo_training [--seeds N] [--epochs N] [--fast]
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  bench::Stopwatch sw;

  const int seeds = args.get_int("--seeds", args.has("--fast") ? 2 : 5);
  const int epochs = args.get_int("--epochs", args.has("--fast") ? 20 : 60);

  // epoch -> per-seed metric values
  std::map<int, std::vector<double>> losses, accuracies, margins;
  std::size_t total_pairs = 0;

  for (int seed = 1; seed <= seeds; ++seed) {
    core::PipelineConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.dpo.epochs = epochs;
    cfg.dpo.pairs_per_epoch = 48;
    // Figure 8 only needs the training curves, not checkpoint evaluation.
    cfg.dpo.checkpoint_every = epochs + 1;

    core::DpoAfPipeline pipe(cfg);
    pipe.pretrain_model();
    const auto pairs = pipe.build_pairs(pipe.collect_candidates());
    total_pairs += pairs.size();
    const auto result = pipe.run_dpo(pairs);
    for (const auto& m : result.metrics) {
      losses[m.epoch].push_back(m.loss);
      accuracies[m.epoch].push_back(m.accuracy);
      margins[m.epoch].push_back(m.margin);
    }
    std::cerr << "[seed " << seed << "/" << seeds << " done, "
              << pairs.size() << " preference pairs]\n";
  }

  std::cout << "Figure 8 — DPO fine-tuning statistics ("
            << seeds << " seeds, mean pairs/seed "
            << total_pairs / static_cast<std::size_t>(seeds) << ")\n\n";

  TextTable table("DPO loss / accuracy / marginal preference vs epoch");
  table.set_header({"epoch", "loss_mean", "loss_min", "loss_max",
                    "acc_mean", "acc_min", "acc_max", "margin_mean",
                    "margin_min", "margin_max"});
  auto stats_of = [](const std::vector<double>& xs) {
    RunningStats s;
    for (double x : xs) s.add(x);
    return s;
  };
  for (const auto& [epoch, ls] : losses) {
    if (epoch % 5 != 0 && epoch != 1) continue;  // print every 5th epoch
    const auto l = stats_of(ls);
    const auto a = stats_of(accuracies[epoch]);
    const auto m = stats_of(margins[epoch]);
    table.add_row({std::to_string(epoch), TextTable::num(l.mean()),
                   TextTable::num(l.min()), TextTable::num(l.max()),
                   TextTable::num(a.mean()), TextTable::num(a.min()),
                   TextTable::num(a.max()), TextTable::num(m.mean()),
                   TextTable::num(m.min()), TextTable::num(m.max())});
  }
  table.print(std::cout);

  // Shape assertions the paper's figure carries.
  const int last = epochs;
  const double loss_first = stats_of(losses[1]).mean();
  const double loss_last = stats_of(losses[last]).mean();
  const double acc_first = stats_of(accuracies[1]).mean();
  const double acc_last = stats_of(accuracies[last]).mean();
  const double margin_last = stats_of(margins[last]).mean();
  std::cout << "\nshape check: loss " << TextTable::num(loss_first) << " -> "
            << TextTable::num(loss_last)
            << (loss_last < loss_first ? " (decreasing, OK)" : " (NOT OK)")
            << "; accuracy " << TextTable::num(acc_first) << " -> "
            << TextTable::num(acc_last)
            << (acc_last > acc_first ? " (rising, OK)" : " (NOT OK)")
            << "; final margin " << TextTable::num(margin_last)
            << (margin_last > 0.0 ? " (positive, OK)" : " (NOT OK)") << "\n";

  bench::print_runtime(sw);
  return 0;
}
