// Micro-benchmarks (google-benchmark): the observability layer itself.
// Quantifies the "zero cost when disabled" claim (DESIGN.md) and the
// per-event cost when enabled — counter add, gauge max, histogram record,
// ScopedTimer, and a full trace Span.
#include <benchmark/benchmark.h>

#include "bench_metrics_main.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

namespace obs = dpoaf::obs;

// Arg 0: observability disabled (the production default — should be one
// predicted branch). Arg 1: enabled (one relaxed fetch_add).
void BM_ObsCounter(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  static obs::Counter& c = obs::counter("bench.obs.counter");
  for (auto _ : state) c.add();
  obs::set_enabled(was_enabled);
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_ObsCounter)->Arg(0)->Arg(1);

void BM_ObsGaugeRecordMax(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  static obs::Gauge& g = obs::gauge("bench.obs.gauge");
  std::int64_t v = 0;
  for (auto _ : state) g.record_max(++v);
  obs::set_enabled(was_enabled);
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_ObsGaugeRecordMax)->Arg(0)->Arg(1);

void BM_ObsHistogramRecord(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  static obs::Histogram& h = obs::histogram("bench.obs.histogram");
  std::uint64_t v = 0;
  for (auto _ : state) h.record(v += 37);
  obs::set_enabled(was_enabled);
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_ObsHistogramRecord)->Arg(0)->Arg(1);

// ScopedTimer = two clock reads + one histogram record when enabled.
void BM_ObsScopedTimer(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  static obs::Histogram& h = obs::histogram("bench.obs.scoped_timer");
  for (auto _ : state) {
    obs::ScopedTimer timer(h);
    benchmark::DoNotOptimize(&timer);
  }
  obs::set_enabled(was_enabled);
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_ObsScopedTimer)->Arg(0)->Arg(1);

// Full trace span: clock reads plus a locked push into the per-thread
// buffer. The buffer caps at 1<<18 events; beyond it spans take the
// (cheaper) drop path, so the early iterations bound the real cost.
void BM_ObsSpan(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  obs::clear_trace();
  for (auto _ : state) {
    obs::Span span("bench.obs.span");
    benchmark::DoNotOptimize(&span);
  }
  obs::clear_trace();
  obs::set_enabled(was_enabled);
  state.SetLabel(state.range(0) != 0 ? "enabled" : "disabled");
}
BENCHMARK(BM_ObsSpan)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return dpoaf_benchmark_main(argc, argv, "micro_obs");
}
