// Continuous-batching vs serial serving throughput (google-benchmark).
// Both rows push the same 8-request batch through a GenerationService in
// deterministic mode; only the slot count differs. slots=1 is the serial
// baseline — one request decodes at a time, and a single decode step has
// no intra-step parallelism to exploit — while slots=8 lets the scheduler
// advance every active request each iteration, spreading the per-slot
// forward passes across the 4 worker threads. The tok/s ratio between the
// two rows is the continuous-batching speedup (the CI gate asserts >= 2x).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_metrics_main.hpp"
#include "nn/gpt.hpp"
#include "serve/service.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace dpoaf;

nn::TinyGpt& serving_model() {
  static nn::TinyGpt model = [] {
    nn::GptConfig cfg;
    cfg.vocab_size = 80;
    cfg.d_model = 128;
    cfg.n_heads = 4;
    cfg.n_layers = 4;
    cfg.d_ff = 512;
    cfg.max_seq = 96;
    Rng rng(4);
    return nn::TinyGpt(cfg, rng);
  }();
  return model;
}

std::vector<serve::GenerateRequest> request_batch(int n) {
  Rng rng(11);
  std::vector<serve::GenerateRequest> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    serve::GenerateRequest req;
    req.prompt.resize(1 + rng.below(8));
    for (auto& t : req.prompt) t = static_cast<int>(rng.below(80));
    req.max_new_tokens = 32;
    req.temperature = 1.0f;
    req.top_k = 4;
    req.eos_id = -1;  // never fires: every request decodes the full budget
    req.seed = rng();
    reqs.push_back(std::move(req));
  }
  return reqs;
}

// Real time, not CPU time: the decoding happens on the scheduler and pool
// threads, so the calling thread's CPU clock would measure nothing.
void BM_ServeThroughput(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  util::set_global_threads(4);
  serve::ServiceConfig cfg;
  cfg.slots = slots;
  cfg.queue_capacity = 64;
  cfg.deterministic = true;
  cfg.seed = 7;
  serve::GenerationService service(serving_model(), cfg);
  const auto requests = request_batch(8);
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto results = service.generate_all(requests);
    for (const auto& r : results)
      tokens += static_cast<std::int64_t>(r.ids.size());
  }
  util::set_global_threads(1);
  state.SetItemsProcessed(tokens);
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(tokens), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeThroughput)->Arg(1)->Arg(8)->ArgName("slots")->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return dpoaf_benchmark_main(argc, argv, "micro_serve");
}
