// Continuous-batching vs serial serving throughput (google-benchmark).
// Both rows push the same 8-request batch through a GenerationService in
// deterministic mode; only the slot count differs. slots=1 is the serial
// baseline — one request decodes at a time, and a single decode step has
// no intra-step parallelism to exploit — while slots=8 lets the scheduler
// advance every active request each iteration, spreading the per-slot
// forward passes across the 4 worker threads. The tok/s ratio between the
// two rows is the continuous-batching speedup (the CI gate asserts >= 2x).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_metrics_main.hpp"
#include "nn/gpt.hpp"
#include "serve/service.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace dpoaf;

nn::TinyGpt& serving_model() {
  static nn::TinyGpt model = [] {
    nn::GptConfig cfg;
    cfg.vocab_size = 80;
    cfg.d_model = 128;
    cfg.n_heads = 4;
    cfg.n_layers = 4;
    cfg.d_ff = 512;
    cfg.max_seq = 96;
    Rng rng(4);
    return nn::TinyGpt(cfg, rng);
  }();
  return model;
}

std::vector<serve::GenerateRequest> request_batch(int n) {
  Rng rng(11);
  std::vector<serve::GenerateRequest> reqs;
  reqs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    serve::GenerateRequest req;
    req.prompt.resize(1 + rng.below(8));
    for (auto& t : req.prompt) t = static_cast<int>(rng.below(80));
    req.max_new_tokens = 32;
    req.temperature = 1.0f;
    req.top_k = 4;
    req.eos_id = -1;  // never fires: every request decodes the full budget
    req.seed = rng();
    reqs.push_back(std::move(req));
  }
  return reqs;
}

// Real time, not CPU time: the decoding happens on the scheduler and pool
// threads, so the calling thread's CPU clock would measure nothing.
void BM_ServeThroughput(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  util::set_global_threads(4);
  serve::ServiceConfig cfg;
  cfg.slots = slots;
  cfg.queue_capacity = 64;
  cfg.deterministic = true;
  cfg.seed = 7;
  serve::GenerationService service(serving_model(), cfg);
  const auto requests = request_batch(8);
  std::int64_t tokens = 0;
  for (auto _ : state) {
    const auto results = service.generate_all(requests);
    for (const auto& r : results)
      tokens += static_cast<std::int64_t>(r.ids.size());
  }
  util::set_global_threads(1);
  state.SetItemsProcessed(tokens);
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(tokens), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeThroughput)->Arg(1)->Arg(8)->ArgName("slots")->UseRealTime();

// Prefix-heavy trace: every request repeats the same 48-token scenario
// preamble and differs only in its last prompt tokens — the serve-layer
// shape of the paper's per-scenario prompt templates. sharing=1 adopts the
// cached preamble blocks from the prefix tree; sharing=0 prefills every
// prompt privately. The prefill/req counter is the CI gate: sharing must
// cut it by the preamble length, with prefix hits > 0.
void BM_ServePrefixSharing(benchmark::State& state) {
  const bool sharing = state.range(0) != 0;
  util::set_global_threads(4);
  Rng rng(23);
  std::vector<int> preamble(48);
  for (auto& t : preamble) t = static_cast<int>(rng.below(80));
  std::vector<serve::GenerateRequest> requests;
  for (int i = 0; i < 16; ++i) {
    serve::GenerateRequest req;
    req.prompt = preamble;
    for (int j = 0; j < 4; ++j)
      req.prompt.push_back(static_cast<int>(rng.below(80)));
    req.max_new_tokens = 8;
    req.temperature = 1.0f;
    req.top_k = 4;
    req.eos_id = -1;
    req.seed = rng();
    requests.push_back(std::move(req));
  }
  serve::ServiceConfig cfg;
  cfg.slots = 4;
  cfg.queue_capacity = 64;
  cfg.deterministic = true;
  cfg.seed = 7;
  cfg.kv_block_tokens = 16;
  cfg.prefix_sharing = sharing;
  std::uint64_t prefill = 0, hits = 0, requests_done = 0;
  std::int64_t tokens = 0;
  for (auto _ : state) {
    state.PauseTiming();  // fresh service: the tree starts cold every run
    serve::GenerationService service(serving_model(), cfg);
    state.ResumeTiming();
    const auto results = service.generate_all(requests);
    for (const auto& r : results)
      tokens += static_cast<std::int64_t>(r.ids.size());
    const auto s = service.stats();
    prefill += s.prefill_steps;
    hits += s.prefix_hits;
    requests_done += s.completed;
  }
  util::set_global_threads(1);
  state.SetItemsProcessed(tokens);
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(tokens), benchmark::Counter::kIsRate);
  state.counters["prefill/req"] =
      static_cast<double>(prefill) /
      static_cast<double>(std::max<std::uint64_t>(1, requests_done));
  state.counters["hits/req"] =
      static_cast<double>(hits) /
      static_cast<double>(std::max<std::uint64_t>(1, requests_done));
}
BENCHMARK(BM_ServePrefixSharing)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("sharing")
    ->UseRealTime();

// Admission-under-backlog regression check: queue a deep backlog of
// near-trivial requests and drain it through one slot, so scheduler
// iterations are dominated by admission bookkeeping. The per-priority FIFO
// lanes keep each admission O(log #priorities); the old best-candidate
// scan over the whole vector made draining an n-deep backlog O(n²) (watch
// req/s collapse at 4096 if this regresses).
void BM_AdmitBacklog(benchmark::State& state) {
  const int backlog = static_cast<int>(state.range(0));
  util::set_global_threads(1);
  Rng rng(31);
  std::vector<serve::GenerateRequest> requests;
  requests.reserve(static_cast<std::size_t>(backlog));
  for (int i = 0; i < backlog; ++i) {
    serve::GenerateRequest req;
    req.prompt = {static_cast<int>(rng.below(80))};
    req.max_new_tokens = 0;  // admission + prefill bookkeeping only
    req.greedy = true;
    req.priority = static_cast<int>(rng.below(4));
    requests.push_back(std::move(req));
  }
  std::uint64_t drained = 0;
  for (auto _ : state) {
    serve::ServiceConfig cfg;
    cfg.slots = 1;
    cfg.queue_capacity = backlog;
    cfg.deterministic = true;
    cfg.prefix_sharing = false;
    serve::GenerationService service(serving_model(), cfg);
    std::vector<std::future<serve::GenerateResult>> futures;
    futures.reserve(requests.size());
    for (const auto& req : requests)
      futures.push_back(service.submit(req).result);
    for (auto& f : futures) f.get();
    drained += static_cast<std::uint64_t>(backlog);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(drained));
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(drained), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AdmitBacklog)
    ->Arg(512)
    ->Arg(4096)
    ->ArgName("backlog")
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return dpoaf_benchmark_main(argc, argv, "micro_serve");
}
