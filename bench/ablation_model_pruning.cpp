// Ablation: Algorithm 1's pruning of isolated states vs the conservative
// variant that keeps every labeling (paper §4.1 remark: "the conservative
// approach can avoid potential missing transitions but will significantly
// increase the computation cost for formal verification").
//
// Reports, per scenario model: state/transition counts, product-automaton
// size for the fine-tuned right-turn controller, verification wall time
// over all 15 specifications — and checks that the verification verdicts
// are identical (pruning only removes unreachable states).
//
// Usage: ablation_model_pruning
#include <iostream>

#include "automata/product.hpp"
#include "bench_common.hpp"
#include "driving/domain.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  (void)args;
  bench::Stopwatch sw;

  driving::DrivingDomain domain;
  auto controller = glm2fsa::glm2fsa(driving::paper_right_turn_after(),
                                     domain.aligner(), domain.build_options());

  TextTable table("Algorithm 1: pruned vs conservative model construction");
  table.set_header({"scenario", "mode", "states", "transitions",
                    "product_states", "verify_ms", "satisfied"});

  for (driving::ScenarioId id : driving::all_scenarios()) {
    std::size_t satisfied_pruned = 0;
    for (const bool conservative : {false, true}) {
      const auto model =
          driving::make_scenario_model(id, domain.vocab(), conservative);
      bench::Stopwatch verify_sw;
      const auto product = automata::make_product(
          model, controller.controller, domain.product_options());
      const auto report = modelcheck::verify_all(
          product, domain.specs(), domain.fairness(id));
      const double ms = verify_sw.seconds() * 1000.0;
      table.add_row({driving::scenario_name(id),
                     conservative ? "conservative" : "pruned",
                     std::to_string(model.state_count()),
                     std::to_string(model.transition_count()),
                     std::to_string(product.state_count()),
                     TextTable::num(ms, 2),
                     std::to_string(report.satisfied())});
      if (!conservative) {
        satisfied_pruned = report.satisfied();
      } else if (report.satisfied() != satisfied_pruned) {
        std::cout << "WARNING: verdicts differ for "
                  << driving::scenario_name(id) << "\n";
      }
    }
  }
  table.print(std::cout);

  // The paper's own illustration: the red→green→yellow traffic light over
  // 3 propositions — pruning collapses 8 labelings to 3 states.
  logic::Vocabulary v;
  const int g = v.add_prop("green");
  const int y = v.add_prop("yellow");
  const int r = v.add_prop("red");
  using logic::Symbol;
  const Symbol G = logic::Vocabulary::bit(g), Y = logic::Vocabulary::bit(y),
               R = logic::Vocabulary::bit(r);
  auto allowed = [&](Symbol from, Symbol to) {
    return (from == G && to == Y) || (from == Y && to == R) ||
           (from == R && to == G);
  };
  const auto pruned =
      automata::TransitionSystem::from_predicate({g, y, r}, allowed, false);
  const auto conservative =
      automata::TransitionSystem::from_predicate({g, y, r}, allowed, true);
  std::cout << "\npaper's traffic-light illustration: pruned "
            << pruned.state_count() << " states vs conservative "
            << conservative.state_count() << " states (2^3 labelings)\n";

  bench::print_runtime(sw);
  return 0;
}
