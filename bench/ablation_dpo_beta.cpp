// Ablation: the DPO inverse-temperature β, which controls how strongly the
// policy is pushed away from the reference model. Small β → aggressive
// preference fitting (risk of over-optimization and degenerate text);
// large β → conservative updates. Sweeps β and reports the Figure-8
// metrics plus downstream specification satisfaction.
//
// Usage: ablation_dpo_beta [--epochs N] [--fast]
#include <iostream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  bench::Stopwatch sw;

  const int epochs = args.get_int("--epochs", args.has("--fast") ? 15 : 40);

  core::PipelineConfig cfg;
  cfg.seed = 7;
  cfg.candidates_from_catalog = true;
  core::DpoAfPipeline pipe(cfg);
  std::cerr << "[pre-training]\n";
  pipe.pretrain_model();
  const auto pairs = pipe.build_pairs(pipe.collect_candidates());
  const auto baseline = pipe.evaluate_model(pipe.model(), 0);

  std::cout << "Ablation — DPO beta (" << pairs.size() << " pairs, " << epochs
            << " epochs each; pre-trained baseline train="
            << TextTable::num(baseline.train_mean_satisfied, 2) << ")\n\n";
  TextTable table("preference sharpness vs KL anchor strength");
  table.set_header({"beta", "final_loss", "final_acc", "final_margin",
                    "train_satisfied", "val_satisfied"});

  for (const float beta : {0.1f, 0.5f, 1.0f, 2.0f, 5.0f}) {
    dpo::DpoConfig dcfg;
    dcfg.epochs = epochs;
    dcfg.checkpoint_every = epochs + 1;
    dcfg.beta = beta;
    Rng rng(31);
    dpo::DpoTrainer trainer(pipe.model().clone(), dcfg, rng);
    const auto history = trainer.train(pairs);
    const auto eval = pipe.evaluate_model(trainer.policy(), epochs);
    table.add_row({TextTable::num(beta, 1),
                   TextTable::num(history.back().loss, 4),
                   TextTable::num(history.back().accuracy, 3),
                   TextTable::num(history.back().margin, 3),
                   TextTable::num(eval.train_mean_satisfied, 2),
                   TextTable::num(eval.val_mean_satisfied, 2)});
    std::cerr << "[beta " << beta << " done]\n";
  }
  table.print(std::cout);
  bench::print_runtime(sw);
  return 0;
}
