// Ablation: LoRA adapter rank (App. E — the paper fine-tunes a low-rank
// approximation for memory efficiency). Sweeps the rank k, reporting
// trainable-parameter count, DPO convergence, downstream specification
// satisfaction, and wall time; rank 0 trains all parameters as the
// full-fine-tuning reference point.
//
// Usage: ablation_lora_rank [--epochs N] [--fast]
#include <iostream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  bench::Stopwatch sw;

  const int epochs = args.get_int("--epochs", args.has("--fast") ? 15 : 40);

  core::PipelineConfig cfg;
  cfg.seed = 7;
  cfg.candidates_from_catalog = true;
  core::DpoAfPipeline pipe(cfg);
  std::cerr << "[pre-training]\n";
  pipe.pretrain_model();
  const auto pairs = pipe.build_pairs(pipe.collect_candidates());

  std::cout << "Ablation — LoRA rank (" << pairs.size() << " pairs, "
            << epochs << " DPO epochs each; model has "
            << pipe.model().parameter_count() << " parameters)\n\n";
  TextTable table("DPO quality vs adapter rank");
  table.set_header({"rank", "trainable_params", "final_loss", "final_acc",
                    "train_satisfied", "val_satisfied", "train_s"});

  for (const std::int64_t rank : {std::int64_t{0}, std::int64_t{1},
                                  std::int64_t{2}, std::int64_t{4},
                                  std::int64_t{8}}) {
    dpo::DpoConfig dcfg;
    dcfg.epochs = epochs;
    dcfg.checkpoint_every = epochs + 1;
    dcfg.lora_rank = rank;
    dcfg.lora_alpha = 2.0f * static_cast<float>(rank);
    Rng rng(31);
    bench::Stopwatch train_sw;
    dpo::DpoTrainer trainer(pipe.model().clone(), dcfg, rng);
    const auto history = trainer.train(pairs);
    const double train_s = train_sw.seconds();
    const auto eval = pipe.evaluate_model(trainer.policy(), epochs);
    table.add_row({rank == 0 ? "full" : std::to_string(rank),
                   std::to_string(trainer.policy().trainable_parameter_count()),
                   TextTable::num(history.back().loss, 4),
                   TextTable::num(history.back().accuracy, 3),
                   TextTable::num(eval.train_mean_satisfied, 2),
                   TextTable::num(eval.val_mean_satisfied, 2),
                   TextTable::num(train_s, 1)});
    std::cerr << "[rank " << rank << " done]\n";
  }
  table.print(std::cout);
  bench::print_runtime(sw);
  return 0;
}
