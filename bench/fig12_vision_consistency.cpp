// Figure 12 reproduction: quantitative comparison of the vision model's
// confidence→accuracy mapping on simulator frames vs real-world frames
// (the paper uses Grounded SAM on Carla vs NuImages; here the synthetic
// detector with domain-conditioned noise — see DESIGN.md).
//
// Expected shape (paper): the two calibration curves approximately
// coincide at every confidence level — the detector "performs
// consistently", which is the premise for transferring verified
// controllers to the real world (§5.3).
//
// Usage: fig12_vision_consistency [--per-class N] [--bins N]
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"
#include "vision/calibration.hpp"
#include "vision/detector.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  bench::Stopwatch sw;

  const int per_class = args.get_int("--per-class", 20000);
  const int bins = args.get_int("--bins", 10);

  vision::SyntheticDetector detector;
  Rng rng_sim(21), rng_real(22);
  const auto sim_samples =
      detector.detect_all(vision::Domain::Simulation, per_class, rng_sim);
  const auto real_samples =
      detector.detect_all(vision::Domain::RealWorld, per_class, rng_real);

  const auto sim_curve = vision::calibration_curve(sim_samples, bins);
  const auto real_curve = vision::calibration_curve(real_samples, bins);

  std::cout << "Figure 12 — detection confidence vs accuracy, simulation "
               "vs real world (" << per_class << " detections per class per "
               "domain)\n\n";
  TextTable table("confidence-accuracy mapping");
  table.set_header({"conf_bin", "sim_accuracy", "real_accuracy", "gap",
                    "sim_n", "real_n"});
  for (int b = 0; b < bins; ++b) {
    const auto& s = sim_curve[static_cast<std::size_t>(b)];
    const auto& r = real_curve[static_cast<std::size_t>(b)];
    if (s.count == 0 || r.count == 0) continue;
    table.add_row({TextTable::num(s.conf_lo, 1) + "-" +
                       TextTable::num(s.conf_hi, 1),
                   TextTable::num(s.accuracy, 3), TextTable::num(r.accuracy, 3),
                   TextTable::num(std::abs(s.accuracy - r.accuracy), 3),
                   std::to_string(s.count), std::to_string(r.count)});
  }
  table.print(std::cout);

  // Per-class detail, as in the paper's per-object panels.
  std::cout << "\n";
  TextTable per_class_table("per-object-class overall accuracy");
  per_class_table.set_header({"class", "sim_accuracy", "real_accuracy"});
  for (const auto& cls : vision::driving_object_classes()) {
    auto acc = [&cls](const std::vector<vision::DetectionSample>& xs) {
      double a = 0;
      int n = 0;
      for (const auto& s : xs)
        if (s.object_class == cls) {
          a += s.correct;
          ++n;
        }
      return a / std::max(1, n);
    };
    per_class_table.add_row({cls, TextTable::num(acc(sim_samples), 3),
                             TextTable::num(acc(real_samples), 3)});
  }
  per_class_table.print(std::cout);

  const double max_gap = vision::max_accuracy_gap(sim_curve, real_curve);
  const double mean_gap = vision::mean_accuracy_gap(sim_curve, real_curve);
  const double ece_sim = vision::expected_calibration_error(sim_curve);
  const double ece_real = vision::expected_calibration_error(real_curve);
  std::cout << "\nconsistency: max per-bin accuracy gap "
            << TextTable::num(max_gap, 3) << ", mean gap "
            << TextTable::num(mean_gap, 3)
            << (max_gap < 0.12 ? " — consistent (OK)" : " — NOT consistent")
            << "\ncalibration: ECE sim " << TextTable::num(ece_sim, 3)
            << ", ECE real " << TextTable::num(ece_real, 3) << "\n";

  bench::print_runtime(sw);
  return 0;
}
