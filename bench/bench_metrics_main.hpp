// Shared main() for the google-benchmark micro benches: strips the
// repo-specific --metrics-json / --trace-json flags from argv *before*
// benchmark::Initialize (which rejects flags it does not know), enables
// observability when either is present, runs the registered benchmarks,
// and writes the RunReport artifacts afterwards.
//
// Usage (instead of BENCHMARK_MAIN()):
//   int main(int argc, char** argv) {
//     return dpoaf_benchmark_main(argc, argv, "micro_tensor");
//   }
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

inline int dpoaf_benchmark_main(int argc, char** argv, const char* tool) {
  std::string metrics_path;
  std::string trace_path;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!metrics_path.empty() || !trace_path.empty())
    dpoaf::obs::set_enabled(true);

  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!metrics_path.empty() || !trace_path.empty()) {
    const dpoaf::obs::RunReport report = dpoaf::obs::capture_run_report(tool);
    bool ok = true;
    // The metrics artifact stays small (no raw trace); the chrome export
    // carries the events for chrome://tracing / ui.perfetto.dev.
    if (!metrics_path.empty() &&
        !dpoaf::obs::write_text_file(
            metrics_path, dpoaf::obs::to_json(report, /*include_trace=*/false)))
      ok = false;
    if (!trace_path.empty() &&
        !dpoaf::obs::write_text_file(trace_path,
                                     dpoaf::obs::to_chrome_trace(report)))
      ok = false;
    if (!ok) {
      std::fprintf(stderr, "%s: failed to write metrics/trace report\n", tool);
      return 1;
    }
  }
  return 0;
}
