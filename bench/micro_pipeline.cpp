// Phased-vs-streaming wall-clock comparison (docs/PIPELINE.md).
//
// Both rows time the same deterministic work — one full checkpoint
// evaluation (serve-backed generation of every task's samples, GLM2FSA
// synthesis, formal verification, per-task means) on identically
// pre-trained pipelines — differing only in PipelineConfig::streaming.
// The two modes are bitwise-identical by construction (property-tested in
// tests/test_dataflow.cpp and tests/test_properties.cpp), so the ratio is
// a pure scheduling number: CI gates streaming ≤ phased via
// scripts/check_bench_regression.py --mode pipeline, and the
// --metrics-json report carries the dataflow queue/overlap gauges that
// show verification running while generation is still draining.
//
//   ./micro_pipeline --benchmark_filter='BM_Pipeline/'
//                    [--metrics-json out.json]
//
// The feedback cache is disabled so every iteration re-runs synthesis and
// verification in earnest — with the cache on, scoring collapses to hash
// lookups after the first iteration and the overlap being measured
// disappears.
#include <benchmark/benchmark.h>

#include "bench_metrics_main.hpp"
#include "core/pipeline.hpp"

namespace {

using dpoaf::core::DpoAfPipeline;
using dpoaf::core::PipelineConfig;

PipelineConfig bench_config(bool streaming) {
  PipelineConfig cfg;
  cfg.seed = 7;
  cfg.streaming = streaming;
  cfg.d_model = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 64;
  cfg.corpus_samples_per_task = 10;
  cfg.pretrain.epochs = 2;
  cfg.serve = true;
  cfg.serve_slots = 4;
  cfg.eval_samples_per_task = 4;
  cfg.eval_max_new_tokens = 48;
  cfg.feedback_cache = false;  // keep verification as real per-item work
  return cfg;
}

// One pre-trained pipeline per mode, built lazily and reused across
// iterations (identical seeds ⇒ identical weights, so the two rows time
// the same computation).
DpoAfPipeline& pipeline(bool streaming) {
  static DpoAfPipeline* phased = nullptr;
  static DpoAfPipeline* stream = nullptr;
  DpoAfPipeline*& slot = streaming ? stream : phased;
  if (slot == nullptr) {
    slot = new DpoAfPipeline(bench_config(streaming));
    slot->pretrain_model();
  }
  return *slot;
}

void BM_Pipeline(benchmark::State& state, bool streaming) {
  DpoAfPipeline& pipe = pipeline(streaming);
  for (auto _ : state) {
    // evaluate_model is deterministic per (seed, epoch): every iteration
    // of both rows generates, synthesizes, and verifies the same
    // responses, so the real_time delta is scheduling only.
    auto eval = pipe.evaluate_model(pipe.model(), 0);
    benchmark::DoNotOptimize(eval);
  }
}

BENCHMARK_CAPTURE(BM_Pipeline, phased, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Pipeline, streaming, true)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dpoaf_benchmark_main(argc, argv, "micro_pipeline");
}
