// Micro-benchmarks (google-benchmark): the formal-verification substrate.
// Measures LTL→Büchi translation for each rulebook specification, product
// construction, and full 15-spec verification of the paper's controllers —
// the inner loop of the automated feedback channel.
#include <benchmark/benchmark.h>

#include "automata/product.hpp"
#include "bench_metrics_main.hpp"
#include "driving/domain.hpp"
#include "modelcheck/buchi.hpp"
#include "monitor/monitor.hpp"
#include "sim/empirical.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace {

using namespace dpoaf;

// Non-const: the cached-vs-uncached sweeps toggle the feedback cache.
driving::DrivingDomain& domain() {
  static driving::DrivingDomain d;
  return d;
}

const automata::FsaController& after_controller() {
  static automata::FsaController c = [] {
    auto r = glm2fsa::glm2fsa(driving::paper_right_turn_after(),
                              domain().aligner(), domain().build_options());
    return r.controller;
  }();
  return c;
}

void BM_LtlToBuchi(benchmark::State& state) {
  const auto& spec =
      domain().specs()[static_cast<std::size_t>(state.range(0))];
  std::size_t ba_states = 0;
  for (auto _ : state) {
    const auto ba = modelcheck::ltl_to_buchi(logic::ltl::lnot(spec.formula));
    ba_states = ba.state_count();
    benchmark::DoNotOptimize(ba_states);
  }
  state.counters["ba_states"] = static_cast<double>(ba_states);
  state.SetLabel(spec.name);
}
BENCHMARK(BM_LtlToBuchi)->DenseRange(0, 14, 7);

void BM_LtlToBuchiCached(benchmark::State& state) {
  // Steady-state hit path of the spec-level Büchi cache: the first
  // iteration pays one translation, every following one is a lookup.
  const auto& spec =
      domain().specs()[static_cast<std::size_t>(state.range(0))];
  modelcheck::set_buchi_cache_enabled(true);
  modelcheck::clear_buchi_cache();
  std::size_t ba_states = 0;
  for (auto _ : state) {
    const auto ba =
        modelcheck::ltl_to_buchi_cached(logic::ltl::lnot(spec.formula));
    ba_states = ba->state_count();
    benchmark::DoNotOptimize(ba_states);
  }
  state.counters["ba_states"] = static_cast<double>(ba_states);
  state.SetLabel(spec.name);
}
BENCHMARK(BM_LtlToBuchiCached)->DenseRange(0, 14, 7);

void BM_ProductConstruction(benchmark::State& state) {
  const auto& model = domain().universal_model();
  for (auto _ : state) {
    const auto k = automata::make_product(model, after_controller(),
                                          domain().product_options());
    benchmark::DoNotOptimize(k.state_count());
  }
}
BENCHMARK(BM_ProductConstruction);

void BM_VerifyAllSpecs_Scenario(benchmark::State& state) {
  // Arg 0: Büchi cache disabled (every spec retranslated per call).
  // Arg 1: enabled — the steady state of the scoring hot path.
  const bool cached = state.range(0) != 0;
  modelcheck::set_buchi_cache_enabled(cached);
  modelcheck::clear_buchi_cache();
  const auto& model = domain().model(driving::ScenarioId::TrafficLight);
  const auto product = automata::make_product(model, after_controller(),
                                              domain().product_options());
  std::size_t satisfied = 0;
  for (auto _ : state) {
    const auto report = modelcheck::verify_all(
        product, domain().specs(),
        domain().fairness(driving::ScenarioId::TrafficLight));
    satisfied = report.satisfied();
    benchmark::DoNotOptimize(satisfied);
  }
  modelcheck::set_buchi_cache_enabled(true);
  state.counters["satisfied"] = static_cast<double>(satisfied);
  state.counters["product_states"] =
      static_cast<double>(product.state_count());
  state.SetLabel(cached ? "buchi_cached" : "buchi_uncached");
}
BENCHMARK(BM_VerifyAllSpecs_Scenario)->Arg(0)->Arg(1);

void BM_FullFeedbackChannel(benchmark::State& state) {
  // Text → parse → align → FSA → product → 15-spec verification: the cost
  // of scoring one LM response. Both memoization tiers disabled — this is
  // the raw single-score cost the caches amortize.
  domain().set_feedback_cache(false);
  modelcheck::set_buchi_cache_enabled(false);
  for (auto _ : state) {
    const auto fb = driving::formal_feedback(
        domain(), driving::ScenarioId::TrafficLight,
        driving::paper_right_turn_before());
    benchmark::DoNotOptimize(fb.score());
  }
  domain().set_feedback_cache(true);
  modelcheck::set_buchi_cache_enabled(true);
}
BENCHMARK(BM_FullFeedbackChannel);

void BM_ScoreRepeatedCandidates(benchmark::State& state) {
  // The DPO-AF loop's actual scoring pattern: every candidate of a task
  // re-scored across rounds (duplicate samples, checkpoint re-evaluation).
  // Arg 0: both caches off. Arg 1: both on (cleared per iteration, so each
  // iteration pays the compulsory misses and then replays).
  auto& d = domain();
  const bool cached = state.range(0) != 0;
  const auto& task = d.task_by_id("turn_right_traffic_light");
  constexpr int kRounds = 4;
  for (auto _ : state) {
    state.PauseTiming();
    d.set_feedback_cache(cached);
    modelcheck::set_buchi_cache_enabled(cached);
    d.clear_feedback_cache();
    modelcheck::clear_buchi_cache();
    state.ResumeTiming();
    int total = 0;
    for (int round = 0; round < kRounds; ++round)
      for (const auto& v : task.variants)
        total += driving::formal_feedback(d, task.scenario, v.text).score();
    benchmark::DoNotOptimize(total);
  }
  d.set_feedback_cache(true);
  modelcheck::set_buchi_cache_enabled(true);
  state.counters["scores_per_iter"] =
      static_cast<double>(kRounds * task.variants.size());
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_ScoreRepeatedCandidates)->Arg(0)->Arg(1);

void BM_MonitorCompile(benchmark::State& state) {
  // Uncached LTLf→NFA→DFA→minimal-DFA compilation per rulebook spec — the
  // one-time cost monitor_for amortizes across the whole run.
  const auto& spec =
      domain().specs()[static_cast<std::size_t>(state.range(0))];
  std::size_t dfa_states = 0;
  for (auto _ : state) {
    const auto m = monitor::compile_monitor(spec.formula);
    DPOAF_CHECK(m != nullptr);
    dfa_states = m->state_count();
    benchmark::DoNotOptimize(dfa_states);
  }
  state.counters["dfa_states"] = static_cast<double>(dfa_states);
  state.SetLabel(spec.name);
}
BENCHMARK(BM_MonitorCompile)->DenseRange(0, 14, 7);

void BM_StreamingSatisfaction(benchmark::State& state) {
  // The repeated-spec empirical-evaluation workload: the full rulebook
  // checked against a fixed batch of simulator traces, round after round.
  // Arg 0: tree evaluator (monitors disabled). Arg 1: compiled monitors
  // through the cache. Verdicts are asserted equal up front; throughput is
  // reported as steps/sec (one trace step against one spec = one item).
  const bool use_monitors = state.range(0) != 0;
  auto& d = domain();
  sim::SimulatorConfig cfg;
  cfg.horizon = 60;
  cfg.perception_noise = 0.1;
  cfg.noise_mask = d.vocab().env_mask();
  cfg.epsilon_label = d.stop_action();
  sim::Simulator simulator(d.model(driving::ScenarioId::TrafficLight), cfg);
  Rng rng(7);
  const std::vector<logic::Trace> traces =
      simulator.collect_traces(after_controller(), 50, rng);

  // Equivalence gate: identical per-spec counts on this exact workload.
  monitor::clear_monitor_cache();
  for (const auto& spec : d.specs()) {
    monitor::set_monitors_enabled(false);
    const auto tree = monitor::satisfaction_counts(spec.formula, traces);
    monitor::set_monitors_enabled(true);
    const auto dfa = monitor::satisfaction_counts(spec.formula, traces);
    DPOAF_CHECK_MSG(tree.satisfied == dfa.satisfied &&
                        tree.evaluated == dfa.evaluated,
                    "monitor/evaluator verdict divergence on " + spec.name);
  }

  monitor::set_monitors_enabled(use_monitors);
  std::size_t steps = 0;
  for (const auto& t : traces) steps += t.size();
  steps *= d.specs().size();
  double rate = 0.0;
  for (auto _ : state) {
    for (const auto& spec : d.specs()) {
      const auto counts = monitor::satisfaction_counts(spec.formula, traces);
      rate = counts.rate();
      benchmark::DoNotOptimize(rate);
    }
  }
  monitor::set_monitors_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(steps) *
                          state.iterations());
  state.counters["specs"] = static_cast<double>(d.specs().size());
  state.SetLabel(use_monitors ? "dfa_monitor" : "tree_evaluator");
}
BENCHMARK(BM_StreamingSatisfaction)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return dpoaf_benchmark_main(argc, argv, "micro_modelcheck");
}
