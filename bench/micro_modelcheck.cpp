// Micro-benchmarks (google-benchmark): the formal-verification substrate.
// Measures LTL→Büchi translation for each rulebook specification, product
// construction, and full 15-spec verification of the paper's controllers —
// the inner loop of the automated feedback channel.
#include <benchmark/benchmark.h>

#include "automata/product.hpp"
#include "bench_metrics_main.hpp"
#include "driving/domain.hpp"
#include "modelcheck/buchi.hpp"

namespace {

using namespace dpoaf;

// Non-const: the cached-vs-uncached sweeps toggle the feedback cache.
driving::DrivingDomain& domain() {
  static driving::DrivingDomain d;
  return d;
}

const automata::FsaController& after_controller() {
  static automata::FsaController c = [] {
    auto r = glm2fsa::glm2fsa(driving::paper_right_turn_after(),
                              domain().aligner(), domain().build_options());
    return r.controller;
  }();
  return c;
}

void BM_LtlToBuchi(benchmark::State& state) {
  const auto& spec =
      domain().specs()[static_cast<std::size_t>(state.range(0))];
  std::size_t ba_states = 0;
  for (auto _ : state) {
    const auto ba = modelcheck::ltl_to_buchi(logic::ltl::lnot(spec.formula));
    ba_states = ba.state_count();
    benchmark::DoNotOptimize(ba_states);
  }
  state.counters["ba_states"] = static_cast<double>(ba_states);
  state.SetLabel(spec.name);
}
BENCHMARK(BM_LtlToBuchi)->DenseRange(0, 14, 7);

void BM_LtlToBuchiCached(benchmark::State& state) {
  // Steady-state hit path of the spec-level Büchi cache: the first
  // iteration pays one translation, every following one is a lookup.
  const auto& spec =
      domain().specs()[static_cast<std::size_t>(state.range(0))];
  modelcheck::set_buchi_cache_enabled(true);
  modelcheck::clear_buchi_cache();
  std::size_t ba_states = 0;
  for (auto _ : state) {
    const auto ba =
        modelcheck::ltl_to_buchi_cached(logic::ltl::lnot(spec.formula));
    ba_states = ba->state_count();
    benchmark::DoNotOptimize(ba_states);
  }
  state.counters["ba_states"] = static_cast<double>(ba_states);
  state.SetLabel(spec.name);
}
BENCHMARK(BM_LtlToBuchiCached)->DenseRange(0, 14, 7);

void BM_ProductConstruction(benchmark::State& state) {
  const auto& model = domain().universal_model();
  for (auto _ : state) {
    const auto k = automata::make_product(model, after_controller(),
                                          domain().product_options());
    benchmark::DoNotOptimize(k.state_count());
  }
}
BENCHMARK(BM_ProductConstruction);

void BM_VerifyAllSpecs_Scenario(benchmark::State& state) {
  // Arg 0: Büchi cache disabled (every spec retranslated per call).
  // Arg 1: enabled — the steady state of the scoring hot path.
  const bool cached = state.range(0) != 0;
  modelcheck::set_buchi_cache_enabled(cached);
  modelcheck::clear_buchi_cache();
  const auto& model = domain().model(driving::ScenarioId::TrafficLight);
  const auto product = automata::make_product(model, after_controller(),
                                              domain().product_options());
  std::size_t satisfied = 0;
  for (auto _ : state) {
    const auto report = modelcheck::verify_all(
        product, domain().specs(),
        domain().fairness(driving::ScenarioId::TrafficLight));
    satisfied = report.satisfied();
    benchmark::DoNotOptimize(satisfied);
  }
  modelcheck::set_buchi_cache_enabled(true);
  state.counters["satisfied"] = static_cast<double>(satisfied);
  state.counters["product_states"] =
      static_cast<double>(product.state_count());
  state.SetLabel(cached ? "buchi_cached" : "buchi_uncached");
}
BENCHMARK(BM_VerifyAllSpecs_Scenario)->Arg(0)->Arg(1);

void BM_FullFeedbackChannel(benchmark::State& state) {
  // Text → parse → align → FSA → product → 15-spec verification: the cost
  // of scoring one LM response. Both memoization tiers disabled — this is
  // the raw single-score cost the caches amortize.
  domain().set_feedback_cache(false);
  modelcheck::set_buchi_cache_enabled(false);
  for (auto _ : state) {
    const auto fb = driving::formal_feedback(
        domain(), driving::ScenarioId::TrafficLight,
        driving::paper_right_turn_before());
    benchmark::DoNotOptimize(fb.score());
  }
  domain().set_feedback_cache(true);
  modelcheck::set_buchi_cache_enabled(true);
}
BENCHMARK(BM_FullFeedbackChannel);

void BM_ScoreRepeatedCandidates(benchmark::State& state) {
  // The DPO-AF loop's actual scoring pattern: every candidate of a task
  // re-scored across rounds (duplicate samples, checkpoint re-evaluation).
  // Arg 0: both caches off. Arg 1: both on (cleared per iteration, so each
  // iteration pays the compulsory misses and then replays).
  auto& d = domain();
  const bool cached = state.range(0) != 0;
  const auto& task = d.task_by_id("turn_right_traffic_light");
  constexpr int kRounds = 4;
  for (auto _ : state) {
    state.PauseTiming();
    d.set_feedback_cache(cached);
    modelcheck::set_buchi_cache_enabled(cached);
    d.clear_feedback_cache();
    modelcheck::clear_buchi_cache();
    state.ResumeTiming();
    int total = 0;
    for (int round = 0; round < kRounds; ++round)
      for (const auto& v : task.variants)
        total += driving::formal_feedback(d, task.scenario, v.text).score();
    benchmark::DoNotOptimize(total);
  }
  d.set_feedback_cache(true);
  modelcheck::set_buchi_cache_enabled(true);
  state.counters["scores_per_iter"] =
      static_cast<double>(kRounds * task.variants.size());
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_ScoreRepeatedCandidates)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return dpoaf_benchmark_main(argc, argv, "micro_modelcheck");
}
