// Micro-benchmarks (google-benchmark): the formal-verification substrate.
// Measures LTL→Büchi translation for each rulebook specification, product
// construction, and full 15-spec verification of the paper's controllers —
// the inner loop of the automated feedback channel.
#include <benchmark/benchmark.h>

#include "automata/product.hpp"
#include "driving/domain.hpp"
#include "modelcheck/buchi.hpp"

namespace {

using namespace dpoaf;

const driving::DrivingDomain& domain() {
  static driving::DrivingDomain d;
  return d;
}

const automata::FsaController& after_controller() {
  static automata::FsaController c = [] {
    auto r = glm2fsa::glm2fsa(driving::paper_right_turn_after(),
                              domain().aligner(), domain().build_options());
    return r.controller;
  }();
  return c;
}

void BM_LtlToBuchi(benchmark::State& state) {
  const auto& spec =
      domain().specs()[static_cast<std::size_t>(state.range(0))];
  std::size_t ba_states = 0;
  for (auto _ : state) {
    const auto ba = modelcheck::ltl_to_buchi(logic::ltl::lnot(spec.formula));
    ba_states = ba.state_count();
    benchmark::DoNotOptimize(ba_states);
  }
  state.counters["ba_states"] = static_cast<double>(ba_states);
  state.SetLabel(spec.name);
}
BENCHMARK(BM_LtlToBuchi)->DenseRange(0, 14, 7);

void BM_ProductConstruction(benchmark::State& state) {
  const auto& model = domain().universal_model();
  for (auto _ : state) {
    const auto k = automata::make_product(model, after_controller(),
                                          domain().product_options());
    benchmark::DoNotOptimize(k.state_count());
  }
}
BENCHMARK(BM_ProductConstruction);

void BM_VerifyAllSpecs_Scenario(benchmark::State& state) {
  const auto& model = domain().model(driving::ScenarioId::TrafficLight);
  const auto product = automata::make_product(model, after_controller(),
                                              domain().product_options());
  std::size_t satisfied = 0;
  for (auto _ : state) {
    const auto report = modelcheck::verify_all(
        product, domain().specs(),
        domain().fairness(driving::ScenarioId::TrafficLight));
    satisfied = report.satisfied();
    benchmark::DoNotOptimize(satisfied);
  }
  state.counters["satisfied"] = static_cast<double>(satisfied);
  state.counters["product_states"] =
      static_cast<double>(product.state_count());
}
BENCHMARK(BM_VerifyAllSpecs_Scenario);

void BM_FullFeedbackChannel(benchmark::State& state) {
  // Text → parse → align → FSA → product → 15-spec verification: the cost
  // of scoring one LM response.
  for (auto _ : state) {
    const auto fb = driving::formal_feedback(
        domain(), driving::ScenarioId::TrafficLight,
        driving::paper_right_turn_before());
    benchmark::DoNotOptimize(fb.score());
  }
}
BENCHMARK(BM_FullFeedbackChannel);

}  // namespace

BENCHMARK_MAIN();
