// Shared helpers for the figure-reproduction benches: a tiny CLI parser
// (--fast halves workloads for smoke runs; --seeds/--epochs override) and
// timing utilities. Each bench binary prints the same rows/series its
// paper figure reports, via util::TextTable.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace dpoaf::bench {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has(std::string_view flag) const {
    for (const auto& a : args_)
      if (a == flag) return true;
    return false;
  }

  [[nodiscard]] int get_int(std::string_view flag, int fallback) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i)
      if (args_[i] == flag) return std::atoi(args_[i + 1].c_str());
    return fallback;
  }

  [[nodiscard]] double get_double(std::string_view flag,
                                  double fallback) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i)
      if (args_[i] == flag) return std::atof(args_[i + 1].c_str());
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_runtime(const Stopwatch& sw) {
  std::cout << "\n[bench runtime: " << sw.seconds() << " s]\n";
}

}  // namespace dpoaf::bench
