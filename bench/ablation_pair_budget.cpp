// Ablation: preference-pair budget vs fine-tuning quality. The paper's key
// economic argument is that automated feedback yields an *unlimited* number
// of preference pairs; this ablation quantifies how many the tiny model
// actually needs before specification satisfaction saturates.
//
// Usage: ablation_pair_budget [--epochs N] [--fast]
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  bench::Args args(argc, argv);
  bench::Stopwatch sw;

  const int epochs = args.get_int("--epochs", args.has("--fast") ? 15 : 40);

  core::PipelineConfig cfg;
  cfg.seed = 7;
  cfg.candidates_from_catalog = true;  // deterministic candidate pool
  core::DpoAfPipeline pipe(cfg);
  std::cerr << "[pre-training]\n";
  pipe.pretrain_model();
  const auto all_pairs = pipe.build_pairs(pipe.collect_candidates());
  const auto baseline = pipe.evaluate_model(pipe.model(), 0);

  std::cout << "Ablation — preference-pair budget (of " << all_pairs.size()
            << " available pairs; " << epochs << " DPO epochs each)\n\n";
  TextTable table("final specification satisfaction vs pair budget");
  table.set_header({"pairs", "train_satisfied", "val_satisfied",
                    "final_dpo_loss", "train_s"});
  table.add_row({"0 (pre-trained)",
                 TextTable::num(baseline.train_mean_satisfied, 2),
                 TextTable::num(baseline.val_mean_satisfied, 2), "-", "-"});

  Rng shuffle_rng(99);
  auto shuffled = all_pairs;
  shuffle_rng.shuffle(shuffled);

  for (const std::size_t budget : {std::size_t{4}, std::size_t{16},
                                   std::size_t{64}, all_pairs.size()}) {
    const std::size_t n = std::min(budget, shuffled.size());
    std::vector<dpo::PreferencePair> subset(shuffled.begin(),
                                            shuffled.begin() +
                                                static_cast<std::ptrdiff_t>(n));
    dpo::DpoConfig dcfg;
    dcfg.epochs = epochs;
    dcfg.checkpoint_every = epochs + 1;
    Rng rng(31);
    bench::Stopwatch train_sw;
    dpo::DpoTrainer trainer(pipe.model().clone(), dcfg, rng);
    const auto history = trainer.train(subset);
    const double train_s = train_sw.seconds();
    const auto eval = pipe.evaluate_model(trainer.policy(), epochs);
    table.add_row({std::to_string(n),
                   TextTable::num(eval.train_mean_satisfied, 2),
                   TextTable::num(eval.val_mean_satisfied, 2),
                   TextTable::num(history.back().loss, 4),
                   TextTable::num(train_s, 1)});
    std::cerr << "[budget " << n << " done]\n";
  }
  table.print(std::cout);
  bench::print_runtime(sw);
  return 0;
}
