#!/usr/bin/env python3
"""Validate dpoaf.run_report JSON documents (stdlib only).

Usage: check_metrics_schema.py REPORT.json [REPORT.json ...]

Checks the stable schema emitted by obs::to_json (src/obs/report.cpp):

  {
    "schema": "dpoaf.run_report",
    "version": 1,
    "tool": "<producing binary>",
    "counters":   {name: uint, ...},
    "gauges":     {name: int, ...},
    "histograms": {name: {"count","sum","min","max": uint,
                          "buckets": [uint, ...]}, ...},
    "phases":     [{"name": str, "spans": uint, "total_ns": uint}, ...],
    "series":     {name: [number, ...], ...},
    "trace":      [{"name": str, "tid","depth","ts_ns","dur_ns": uint}, ...]
  }

"trace" is optional (CI artifacts are written without it). Exits non-zero
with one line per problem; CI's perf-smoke job fails on any schema drift.
"""

import json
import sys

SCHEMA = "dpoaf.run_report"
VERSION = 1


def is_uint(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def is_number(v):
    # to_json writes non-finite doubles as null, parsed back as NaN.
    return (isinstance(v, (int, float)) and not isinstance(v, bool)) or v is None


def check_report(doc, errors):
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if doc.get("version") != VERSION:
        errors.append(f"version is {doc.get('version')!r}, want {VERSION}")
    if not isinstance(doc.get("tool"), str) or not doc["tool"]:
        errors.append("tool missing or not a non-empty string")

    for key, value_check, desc in (
        ("counters", is_uint, "a non-negative integer"),
        ("gauges", is_int, "an integer"),
    ):
        section = doc.get(key)
        if not isinstance(section, dict):
            errors.append(f"{key} missing or not an object")
            continue
        for name, value in section.items():
            if not value_check(value):
                errors.append(f"{key}[{name!r}] is not {desc}: {value!r}")

    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        errors.append("histograms missing or not an object")
    else:
        for name, h in hists.items():
            if not isinstance(h, dict):
                errors.append(f"histograms[{name!r}] is not an object")
                continue
            for field in ("count", "sum", "min", "max"):
                if not is_uint(h.get(field)):
                    errors.append(
                        f"histograms[{name!r}].{field} is not a non-negative"
                        f" integer: {h.get(field)!r}")
            buckets = h.get("buckets")
            if (not isinstance(buckets, list) or len(buckets) > 64
                    or not all(is_uint(b) for b in buckets)):
                errors.append(
                    f"histograms[{name!r}].buckets is not a list of ≤64"
                    " non-negative integers")
            elif is_uint(h.get("count")) and sum(buckets) != h["count"]:
                errors.append(
                    f"histograms[{name!r}]: bucket sum {sum(buckets)}"
                    f" != count {h['count']}")

    phases = doc.get("phases")
    if not isinstance(phases, list):
        errors.append("phases missing or not a list")
    else:
        for i, p in enumerate(phases):
            if (not isinstance(p, dict) or not isinstance(p.get("name"), str)
                    or not is_uint(p.get("spans"))
                    or not is_uint(p.get("total_ns"))):
                errors.append(f"phases[{i}] malformed: {p!r}")

    series = doc.get("series")
    if not isinstance(series, dict):
        errors.append("series missing or not an object")
    else:
        for name, values in series.items():
            if not isinstance(values, list) or not all(
                    is_number(v) for v in values):
                errors.append(f"series[{name!r}] is not a list of numbers")

    trace = doc.get("trace")
    if trace is not None:
        if not isinstance(trace, list):
            errors.append("trace present but not a list")
        else:
            for i, e in enumerate(trace):
                if (not isinstance(e, dict)
                        or not isinstance(e.get("name"), str)
                        or not all(is_uint(e.get(f))
                                   for f in ("tid", "depth", "ts_ns",
                                             "dur_ns"))):
                    errors.append(f"trace[{i}] malformed: {e!r}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = []
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            errors.append(f"cannot parse: {exc}")
            doc = None
        if doc is not None:
            check_report(doc, errors)
        if errors:
            failed = True
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            counters = len(doc.get("counters", {}))
            phases = len(doc.get("phases", []))
            print(f"{path}: OK ({doc.get('tool')}, {counters} counters,"
                  f" {phases} phases)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
