#!/usr/bin/env python3
"""Check that every relative markdown link in the repo's docs resolves.

Scans the given markdown files (or the repo's standard doc set when run
with no arguments) for inline links/images `[text](target)` and reference
definitions `[id]: target`, and fails if a relative target does not exist
on disk. External links (http/https/mailto) are not fetched — CI must not
depend on the network — and pure-fragment links (`#section`) are checked
against the headings of the containing file.

Usage: check_doc_links.py [FILE.md ...]
Exit code 0 when all links resolve, 1 otherwise.
"""

import os
import re
import sys

DEFAULT_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/BACKENDS.md",
    "docs/CHECKPOINT_FORMAT.md",
    "docs/GENERATOR.md",
    "docs/PIPELINE.md",
    "docs/RUN_REPORT_SCHEMA.md",
    "docs/SERVING.md",
    "docs/VERIFICATION.md",
]

# Inline links and images: [text](target) / ![alt](target). Targets never
# contain spaces or parens in this repo's docs, which keeps the regex sane.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
# Reference-style definitions: [id]: target
REF_DEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = re.compile(r"^(https?|mailto|ftp):")


def strip_code(text):
    """Drop fenced and inline code spans so example snippets aren't linted."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def heading_anchors(path):
    """GitHub-style anchor slugs for every heading in a markdown file."""
    anchors = set()
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = re.match(r"#{1,6}\s+(.*)", line)
            if not m:
                continue
            slug = m.group(1).strip().lower()
            slug = re.sub(r"[^\w\s-]", "", slug, flags=re.UNICODE)
            anchors.add(re.sub(r"\s+", "-", slug))
    return anchors


def check_file(md_path):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = strip_code(f.read())
    targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
    base = os.path.dirname(md_path)
    for target in targets:
        if EXTERNAL.match(target):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor
            if fragment and fragment not in heading_anchors(md_path):
                errors.append(f"{md_path}: broken anchor '#{fragment}'")
            continue
        resolved = os.path.normpath(os.path.join(base, path_part))
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: broken link '{target}' "
                          f"(no such file: {resolved})")
        elif fragment and resolved.endswith(".md"):
            if fragment not in heading_anchors(resolved):
                errors.append(f"{md_path}: broken anchor '{target}'")
    return errors


def main(argv):
    files = argv[1:] or [p for p in DEFAULT_DOCS if os.path.exists(p)]
    all_errors = []
    for md in files:
        if not os.path.exists(md):
            all_errors.append(f"no such file: {md}")
            continue
        all_errors.extend(check_file(md))
    if all_errors:
        for e in all_errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print(f"ok: {len(files)} file(s), all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
