#!/usr/bin/env python3
"""Gate the simd backend's matmul speedup over scalar (stdlib only).

Usage: check_bench_regression.py BENCH.json [--min-ratio 2.0]
                                 [--out BENCH_tensor.json]

BENCH.json is a google-benchmark ``--benchmark_out`` JSON file from a
``micro_tensor --benchmark_filter='BM_Matmul/'`` run, whose rows are named
``BM_Matmul/<backend>/<n>`` and carry a ``GFLOP/s`` counter (each row has
already asserted numerical equivalence against the scalar reference, so a
throughput number here is also a correctness certificate — see
bench/micro_tensor.cpp).

Writes a small summary artifact (--out) with per-size scalar/simd GFLOP/s
and the speedup ratio, then fails (exit 1) if the ratio at the LARGEST
common size is below --min-ratio: the largest size is the least
noise-prone and the closest to the pipeline's real working set. Missing
simd rows (CPU without AVX2+FMA, or rows that errored) fail the gate too —
CI runners are x86_64, so absence there means the dispatch broke.
"""

import argparse
import json
import re
import sys

ROW = re.compile(r"^BM_Matmul/(scalar|simd)/(\d+)$")


def load_rows(path):
    """-> {backend: {n: gflops}} from a --benchmark_out JSON file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows = {"scalar": {}, "simd": {}}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        match = ROW.match(bench.get("name", ""))
        if not match:
            continue
        if bench.get("error_occurred"):
            print(f"error row: {bench['name']}: "
                  f"{bench.get('error_message', 'unknown error')}")
            continue
        gflops = bench.get("GFLOP/s")
        if not isinstance(gflops, (int, float)) or gflops <= 0:
            print(f"row {bench['name']} has no positive GFLOP/s counter")
            continue
        rows[match.group(1)][int(match.group(2))] = gflops / 1e9
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="minimum simd:scalar GFLOP/s ratio at the "
                             "largest common size (default: 2.0)")
    parser.add_argument("--out", default="BENCH_tensor.json",
                        help="summary artifact path (default: "
                             "BENCH_tensor.json)")
    args = parser.parse_args()

    rows = load_rows(args.bench_json)
    sizes = sorted(set(rows["scalar"]) & set(rows["simd"]))
    summary = {
        "schema": "dpoaf.bench_tensor",
        "version": 1,
        "min_ratio": args.min_ratio,
        "sizes": [
            {
                "n": n,
                "scalar_gflops": round(rows["scalar"][n], 3),
                "simd_gflops": round(rows["simd"][n], 3),
                "ratio": round(rows["simd"][n] / rows["scalar"][n], 3),
            }
            for n in sizes
        ],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")

    if not sizes:
        print(f"no comparable BM_Matmul scalar/simd row pairs in "
              f"{args.bench_json} (scalar sizes: {sorted(rows['scalar'])}, "
              f"simd sizes: {sorted(rows['simd'])})")
        return 1
    for entry in summary["sizes"]:
        print(f"n={entry['n']}: scalar {entry['scalar_gflops']} GFLOP/s, "
              f"simd {entry['simd_gflops']} GFLOP/s, "
              f"ratio {entry['ratio']}x")
    gate = summary["sizes"][-1]
    if gate["ratio"] < args.min_ratio:
        print(f"FAIL: simd:scalar ratio {gate['ratio']}x at n={gate['n']} "
              f"is below the {args.min_ratio}x floor")
        return 1
    print(f"OK: simd:scalar ratio {gate['ratio']}x at n={gate['n']} "
          f"meets the {args.min_ratio}x floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
