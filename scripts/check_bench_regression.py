#!/usr/bin/env python3
"""Gate benchmark comparisons (stdlib only).

Two modes over a google-benchmark ``--benchmark_out`` JSON file:

``--mode tensor`` (default)
    Gate the simd backend's matmul speedup over scalar.
    Usage: check_bench_regression.py BENCH.json [--min-ratio 2.0]
                                     [--out BENCH_tensor.json]
    Rows are named ``BM_Matmul/<backend>/<n>`` and carry a ``GFLOP/s``
    counter (each row has already asserted numerical equivalence against
    the scalar reference, so a throughput number here is also a
    correctness certificate — see bench/micro_tensor.cpp). Writes a
    summary artifact with per-size scalar/simd GFLOP/s and the speedup
    ratio, then fails (exit 1) if the ratio at the LARGEST common size is
    below --min-ratio: the largest size is the least noise-prone and the
    closest to the pipeline's real working set. Missing simd rows (CPU
    without AVX2+FMA, or rows that errored) fail the gate too — CI
    runners are x86_64, so absence there means the dispatch broke.

``--mode pipeline``
    Gate the streaming dataflow pipeline against the phased baseline
    (docs/PIPELINE.md).
    Usage: check_bench_regression.py BENCH.json --mode pipeline
                                     [--max-ratio 1.10]
                                     [--out BENCH_pipeline.json]
    Rows come from ``micro_pipeline --benchmark_filter='BM_Pipeline/'``
    and are named ``BM_Pipeline/{phased,streaming}``; both time identical
    (bitwise-equal, property-tested) work, so real_time is a pure
    scheduling comparison. Fails if streaming:phased real_time exceeds
    --max-ratio — streaming must never be slower than the barriered
    phases it replaced, modulo the noise allowance.
"""

import argparse
import json
import re
import sys

ROW = re.compile(r"^BM_Matmul/(scalar|simd)/(\d+)$")
PIPELINE_ROW = re.compile(r"^BM_Pipeline/(phased|streaming)$")


def load_rows(path):
    """-> {backend: {n: gflops}} from a --benchmark_out JSON file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows = {"scalar": {}, "simd": {}}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        match = ROW.match(bench.get("name", ""))
        if not match:
            continue
        if bench.get("error_occurred"):
            print(f"error row: {bench['name']}: "
                  f"{bench.get('error_message', 'unknown error')}")
            continue
        gflops = bench.get("GFLOP/s")
        if not isinstance(gflops, (int, float)) or gflops <= 0:
            print(f"row {bench['name']} has no positive GFLOP/s counter")
            continue
        rows[match.group(1)][int(match.group(2))] = gflops / 1e9
    return rows


def load_pipeline_rows(path):
    """-> {mode: real_time_ms} from a --benchmark_out JSON file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        match = PIPELINE_ROW.match(bench.get("name", ""))
        if not match:
            continue
        if bench.get("error_occurred"):
            print(f"error row: {bench['name']}: "
                  f"{bench.get('error_message', 'unknown error')}")
            continue
        real_time = bench.get("real_time")
        if not isinstance(real_time, (int, float)) or real_time <= 0:
            print(f"row {bench['name']} has no positive real_time")
            continue
        unit = bench.get("time_unit", "ns")
        to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
        rows[match.group(1)] = real_time * to_ms.get(unit, 1e-6)
    return rows


def run_pipeline_gate(args):
    rows = load_pipeline_rows(args.bench_json)
    missing = sorted({"phased", "streaming"} - set(rows))
    summary = {
        "schema": "dpoaf.bench_pipeline",
        "version": 1,
        "max_ratio": args.max_ratio,
        "phased_ms": round(rows["phased"], 3) if "phased" in rows else None,
        "streaming_ms":
            round(rows["streaming"], 3) if "streaming" in rows else None,
        "ratio": (round(rows["streaming"] / rows["phased"], 3)
                  if not missing else None),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")

    if missing:
        print(f"missing BM_Pipeline rows in {args.bench_json}: "
              f"{', '.join(missing)}")
        return 1
    print(f"phased {summary['phased_ms']} ms, "
          f"streaming {summary['streaming_ms']} ms, "
          f"ratio {summary['ratio']}x")
    if summary["ratio"] > args.max_ratio:
        print(f"FAIL: streaming:phased ratio {summary['ratio']}x exceeds "
              f"the {args.max_ratio}x ceiling — the dataflow pipeline "
              f"regressed against the barriered phases")
        return 1
    print(f"OK: streaming:phased ratio {summary['ratio']}x is within the "
          f"{args.max_ratio}x ceiling")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--mode", choices=("tensor", "pipeline"),
                        default="tensor",
                        help="which gate to run (default: tensor)")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="tensor mode: minimum simd:scalar GFLOP/s "
                             "ratio at the largest common size "
                             "(default: 2.0)")
    parser.add_argument("--max-ratio", type=float, default=1.10,
                        help="pipeline mode: maximum streaming:phased "
                             "real_time ratio (default: 1.10)")
    parser.add_argument("--out", default=None,
                        help="summary artifact path (default: "
                             "BENCH_tensor.json / BENCH_pipeline.json by "
                             "mode)")
    args = parser.parse_args()
    if args.out is None:
        args.out = ("BENCH_tensor.json" if args.mode == "tensor"
                    else "BENCH_pipeline.json")
    if args.mode == "pipeline":
        return run_pipeline_gate(args)

    rows = load_rows(args.bench_json)
    sizes = sorted(set(rows["scalar"]) & set(rows["simd"]))
    summary = {
        "schema": "dpoaf.bench_tensor",
        "version": 1,
        "min_ratio": args.min_ratio,
        "sizes": [
            {
                "n": n,
                "scalar_gflops": round(rows["scalar"][n], 3),
                "simd_gflops": round(rows["simd"][n], 3),
                "ratio": round(rows["simd"][n] / rows["scalar"][n], 3),
            }
            for n in sizes
        ],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")

    if not sizes:
        print(f"no comparable BM_Matmul scalar/simd row pairs in "
              f"{args.bench_json} (scalar sizes: {sorted(rows['scalar'])}, "
              f"simd sizes: {sorted(rows['simd'])})")
        return 1
    for entry in summary["sizes"]:
        print(f"n={entry['n']}: scalar {entry['scalar_gflops']} GFLOP/s, "
              f"simd {entry['simd_gflops']} GFLOP/s, "
              f"ratio {entry['ratio']}x")
    gate = summary["sizes"][-1]
    if gate["ratio"] < args.min_ratio:
        print(f"FAIL: simd:scalar ratio {gate['ratio']}x at n={gate['n']} "
              f"is below the {args.min_ratio}x floor")
        return 1
    print(f"OK: simd:scalar ratio {gate['ratio']}x at n={gate['n']} "
          f"meets the {args.min_ratio}x floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
