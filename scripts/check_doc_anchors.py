#!/usr/bin/env python3
"""Check that docs/ARCHITECTURE.md documents every src/ subsystem.

The architecture doc promises one `### src/<name>` subsection per
directory under src/; this gate fails when a subsystem is added without
its doc entry (or an entry goes stale after a directory is removed). The
README's architecture tree must mention each subsystem too, so the two
high-level views cannot drift apart.

Usage: check_doc_anchors.py [REPO_ROOT]
Exit code 0 when the docs cover src/ exactly, 1 otherwise.
"""

import os
import re
import sys


def src_subsystems(root):
    src = os.path.join(root, "src")
    out = []
    for name in sorted(os.listdir(src)):
        path = os.path.join(src, name)
        # A subsystem is a directory that participates in the build.
        if os.path.isdir(path) and os.path.exists(
                os.path.join(path, "CMakeLists.txt")):
            out.append(name)
    return out


def architecture_entries(doc_path):
    entries = set()
    with open(doc_path, encoding="utf-8") as f:
        for line in f:
            m = re.match(r"###\s+`src/([A-Za-z0-9_]+)`", line)
            if m:
                entries.add(m.group(1))
    return entries


def main(argv):
    root = argv[1] if len(argv) > 1 else "."
    doc_path = os.path.join(root, "docs", "ARCHITECTURE.md")
    readme_path = os.path.join(root, "README.md")
    errors = []

    if not os.path.exists(doc_path):
        print(f"error: missing {doc_path}", file=sys.stderr)
        return 1

    subsystems = src_subsystems(root)
    entries = architecture_entries(doc_path)

    for name in subsystems:
        if name not in entries:
            errors.append(
                f"src/{name} has no '### `src/{name}`' entry in "
                f"docs/ARCHITECTURE.md")
    for name in sorted(entries):
        if name not in subsystems:
            errors.append(
                f"docs/ARCHITECTURE.md documents 'src/{name}' but that "
                f"directory does not exist (stale entry)")

    if os.path.exists(readme_path):
        with open(readme_path, encoding="utf-8") as f:
            readme = f.read()
        for name in subsystems:
            if not re.search(rf"^\s+{re.escape(name)}/\s", readme,
                             re.MULTILINE):
                errors.append(
                    f"README.md architecture tree is missing '{name}/'")

    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print(f"ok: {len(subsystems)} subsystems documented "
          f"({', '.join(subsystems)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
